"""Unit tests for the workloads package (images + pipelines)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads import (
    box_image,
    checkerboard_image,
    detect_edges,
    edge_density,
    gradient_image,
    multi_operator_suite,
    noise_image,
    volume,
)


class TestImages:
    def test_gradient_shape_and_monotone(self):
        img = gradient_image(16, 8)
        assert img.shape == (16, 8)
        assert (np.diff(img[:, 0]) >= 0).all()

    def test_checkerboard_alternates(self):
        img = checkerboard_image(16, 16, tile=4, low=0, high=255)
        assert img[0, 0] == 0
        assert img[4, 0] == 255
        assert img[4, 4] == 0

    def test_box_has_bright_center(self):
        img = box_image(16, 16)
        assert img[8, 8] == 255
        assert img[0, 0] == 0

    def test_noise_deterministic(self):
        assert np.array_equal(noise_image(8, 8, seed=1), noise_image(8, 8, seed=1))
        assert not np.array_equal(noise_image(8, 8, seed=1), noise_image(8, 8, seed=2))

    def test_volume(self):
        vol = volume(8, 8, 8)
        assert vol.shape == (8, 8, 8)
        assert vol[4, 4, 4] > vol[0, 0, 0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            gradient_image(0, 8)
        with pytest.raises(SimulationError):
            checkerboard_image(8, 8, tile=0)
        with pytest.raises(SimulationError):
            box_image(8, 8, box_fraction=0)
        with pytest.raises(SimulationError):
            volume(8, 8, 0)


class TestDetectEdges:
    def test_log_on_box_matches_golden(self):
        report = detect_edges(box_image(14, 15), "log")
        assert report.matches_golden
        assert report.n_banks == 13
        assert report.speedup == pytest.approx(13.0)

    def test_constrained_run(self):
        report = detect_edges(box_image(12, 21), "log", n_max=10)
        assert report.matches_golden
        assert report.n_banks == 7
        assert report.speedup == pytest.approx(6.5)

    def test_flat_image_quiet_response(self):
        img = np.full((12, 13), 100, dtype=np.int64)
        report = detect_edges(img, "log")
        assert report.matches_golden
        assert not report.output.any()  # zero-mean kernel on flat input

    def test_edge_density_on_checkerboard_vs_flat(self):
        busy = detect_edges(checkerboard_image(14, 14, tile=2), "log")
        flat = detect_edges(np.full((14, 14), 7), "log")
        assert edge_density(busy) > edge_density(flat)

    def test_rejects_3d_operator(self):
        with pytest.raises(SimulationError):
            detect_edges(box_image(12, 12), "sobel3d")

    def test_rejects_3d_image(self):
        with pytest.raises(SimulationError):
            detect_edges(np.zeros((4, 4, 4)), "log")

    def test_multi_operator_suite(self):
        reports = multi_operator_suite(box_image(14, 15), operators=("log", "se"))
        assert set(reports) == {"log", "se"}
        assert all(r.matches_golden for r in reports.values())
