"""Parallel sweep executor: determinism, registry transport, CLI plumbing.

Every ``jobs=N`` path must return exactly what the serial path returns, in
the same order, with the same metrics published — parallelism is a speed
knob, never a semantics knob.
"""

from __future__ import annotations

import json

import pytest

from repro.eval import resolve_jobs, run_parallel
from repro.eval.casestudy import run_case_study
from repro.eval.cli import main_casestudy, main_sweeps, main_table1
from repro.eval.sweeps import overhead_vs_banks, throughput_vs_unroll
from repro.eval.table1 import build_table
from repro.obs import metrics as obs_metrics
from repro.patterns import log_pattern


def _square(x: int) -> int:
    return x * x


class TestRunParallel:
    def test_resolve_jobs(self):
        assert resolve_jobs(None, 10) == 1
        assert resolve_jobs(1, 10) == 1
        assert resolve_jobs(4, 10) == 4
        assert resolve_jobs(8, 3) == 3  # never more workers than items
        assert resolve_jobs(4, 1) == 1
        assert resolve_jobs(4, 0) == 1

    def test_resolve_jobs_rejects_nonpositive(self):
        # "Zero workers" is an upstream bug, not a serial request.
        with pytest.raises(ValueError, match="positive worker count"):
            resolve_jobs(0, 10)
        with pytest.raises(ValueError, match="positive worker count"):
            resolve_jobs(-2, 10)
        with pytest.raises(ValueError, match="positive worker count"):
            run_parallel(_square, [1, 2, 3], jobs=0)

    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(20))
        serial = run_parallel(_square, items)
        parallel = run_parallel(_square, items, jobs=4)
        assert serial == parallel == [x * x for x in items]

    def test_empty_items(self):
        assert run_parallel(_square, [], jobs=4) == []


class TestParallelSweeps:
    def test_overhead_vs_banks_matches_serial(self):
        shape = (64, 48)
        banks = range(2, 10)
        serial = overhead_vs_banks(shape, banks, pattern=log_pattern())
        parallel = overhead_vs_banks(shape, banks, pattern=log_pattern(), jobs=3)
        assert parallel == serial
        assert [p.n_banks for p in parallel] == list(banks)

    def test_throughput_vs_unroll_matches_serial(self):
        serial = throughput_vs_unroll(log_pattern(), (1, 2, 4))
        parallel = throughput_vs_unroll(log_pattern(), (1, 2, 4), jobs=2)
        assert parallel == serial


class TestParallelTable1:
    BENCHES = ["log", "se"]

    def test_rows_match_serial(self):
        serial = build_table(self.BENCHES, time_repetitions=1)
        parallel = build_table(self.BENCHES, time_repetitions=1, jobs=2)
        assert [r.benchmark for r in parallel.rows] == self.BENCHES
        for s, p in zip(serial.rows, parallel.rows):
            # Timing fields jitter; every derived/solution field must match.
            assert s.benchmark == p.benchmark
            assert s.ours.n_banks == p.ours.n_banks
            assert s.ours.operations == p.ours.operations
            assert s.ltb.n_banks == p.ltb.n_banks
            assert s.ltb.operations == p.ltb.operations
            assert s.storage == p.storage

    def test_worker_metrics_merged_in_parent(self):
        reg = obs_metrics.registry()
        reg.reset()
        table = build_table(self.BENCHES, time_repetitions=1, jobs=2)
        gauges = reg.snapshot()["gauges"]
        # Worker-side publishes travel back via registry dumps — the
        # parent registry must show each row's gauges with worker values.
        for row in table.rows:
            assert gauges[f"eval.{row.benchmark}.ours.n_banks"] == row.ours.n_banks
            assert gauges[f"eval.{row.benchmark}.ltb.n_banks"] == row.ltb.n_banks


class TestParallelCaseStudy:
    def test_matches_serial(self):
        serial = run_case_study(shape=(64, 48), n_max=10)
        parallel = run_case_study(shape=(64, 48), n_max=10, jobs=2)
        assert parallel == serial


class TestCli:
    def test_table1_jobs_smoke(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        rc = main_table1(
            [
                "--benchmarks",
                "log",
                "se",
                "--repetitions",
                "1",
                "--jobs",
                "2",
                "--emit-metrics",
                str(metrics_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "log" in out
        payload = json.loads(metrics_path.read_text())
        assert "counters" in payload

    def test_casestudy_jobs_smoke(self, capsys):
        rc = main_casestudy(["--nmax", "10", "--jobs", "2"])
        assert rc == 0
        assert "LoG" in capsys.readouterr().out

    def test_sweeps_smoke(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        rc = main_sweeps(
            [
                "--benchmark",
                "log",
                "--shape",
                "64,48",
                "--banks",
                "2-6",
                "--factors",
                "1,2",
                "--jobs",
                "2",
                "--emit-metrics",
                str(metrics_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overhead" in out.lower()
        payload = json.loads(metrics_path.read_text())
        gauges = payload["gauges"]
        assert any(k.startswith("sweeps.overhead.") for k in gauges)
        assert any(k.startswith("sweeps.unroll.") for k in gauges)


class _AlwaysBrokenPool:
    """A stand-in executor whose workers have all died."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, items):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("a child process terminated abruptly")


class _FlakyPool(_AlwaysBrokenPool):
    """Breaks on first use, works on the retry (a crashed-then-respawned pool)."""

    failures_left = 1

    def map(self, fn, items):
        if type(self).failures_left > 0:
            type(self).failures_left -= 1
            return super().map(fn, items)
        return list(map(fn, items))


class TestBrokenPoolResilience:
    """A crashed worker degrades the batch, never the process."""

    def _broken_delta(self):
        return (
            obs_metrics.registry()
            .snapshot()["counters"]
            .get("parallel.pool.broken", 0)
        )

    def test_always_broken_falls_back_to_serial(self, monkeypatch):
        import repro.eval.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _AlwaysBrokenPool)
        before = self._broken_delta()
        items = list(range(8))
        assert run_parallel(_square, items, jobs=4) == [x * x for x in items]
        # One failure per attempt: the first pool and the retry pool.
        assert self._broken_delta() - before == parallel_mod.POOL_RETRIES + 1

    def test_broken_once_succeeds_on_fresh_pool(self, monkeypatch):
        import repro.eval.parallel as parallel_mod

        _FlakyPool.failures_left = 1
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _FlakyPool)
        before = self._broken_delta()
        items = list(range(8))
        assert run_parallel(_square, items, jobs=4) == [x * x for x in items]
        assert self._broken_delta() - before == 1

    def test_serial_path_never_builds_a_pool(self, monkeypatch):
        import repro.eval.parallel as parallel_mod

        class _Bomb:
            def __init__(self, *a, **k):
                raise AssertionError("serial path must not construct a pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _Bomb)
        assert run_parallel(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
        assert run_parallel(_square, [7], jobs=8) == [49]
