"""SolutionStore edge behavior: eviction boundaries, collisions, recovery.

``tests/test_serve.py`` covers the happy paths; this module pins down the
corners a content-addressed LRU can silently get wrong — off-by-one at the
capacity boundary, refresh-vs-insert at capacity, same-digest rewrites,
digest collisions between *different* payloads, and the guarantee that an
evicted artifact is fully reconstructible by re-solving.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cache import solve_key, stable_digest
from repro.core.solver import solve
from repro.io import solution_to_dict
from repro.obs import registry
from repro.patterns import log_pattern
from repro.serve import SolutionStore


def _entry(n_max):
    """A (digest, solution) pair; distinct per ``n_max``."""
    solution = solve(log_pattern(), n_max=n_max, cache=False).solution
    digest = stable_digest(solve_key(log_pattern(), None, n_max, "latency", 0))
    return digest, solution


class TestEvictionBoundary:
    def test_exactly_at_capacity_nothing_evicted(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=3)
        digests = []
        for n_max in (5, 6, 7):
            digest, solution = _entry(n_max)
            digests.append(digest)
            store.put(digest, solution)
        assert len(store) == 3
        assert all(store.get(d) is not None for d in digests)

    def test_one_past_capacity_evicts_exactly_the_oldest(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=3)
        digests = []
        for n_max in (5, 6, 7, 8):
            digest, solution = _entry(n_max)
            digests.append(digest)
            store.put(digest, solution)
        assert len(store) == 3
        assert store.digests() == digests[1:]
        assert not (tmp_path / f"{digests[0]}.json").exists()

    def test_rewrite_at_capacity_is_refresh_not_insert(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=3)
        entries = [_entry(n_max) for n_max in (5, 6, 7)]
        for digest, solution in entries:
            store.put(digest, solution)
        # Re-putting an existing digest must not push anything out...
        store.put(entries[0][0], entries[0][1])
        assert len(store) == 3
        # ...but it must move that digest to most-recently-used.
        assert store.digests()[-1] == entries[0][0]

    def test_get_refreshes_lru_order(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=3)
        entries = [_entry(n_max) for n_max in (5, 6, 7)]
        for digest, solution in entries:
            store.put(digest, solution)
        assert store.get(entries[0][0]) is not None  # touch the oldest
        overflow_digest, overflow_solution = _entry(8)
        store.put(overflow_digest, overflow_solution)
        # The touched entry survives; the untouched runner-up is evicted.
        assert store.get(entries[0][0]) is not None
        assert store.get(entries[1][0]) is None

    def test_eviction_metrics_advance(self, tmp_path):
        counter = registry().counter("serve.store.evictions")
        before = counter.value
        store = SolutionStore(tmp_path, max_entries=1)
        for n_max in (5, 6, 7):
            store.put(*_entry(n_max))
        assert counter.value - before == 2

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SolutionStore(tmp_path, max_entries=0)


class TestDigestCollisions:
    def test_same_digest_rewrite_is_one_entry_last_write_wins(self, tmp_path):
        # A forged collision: two different solutions under one digest.
        # Content addressing makes this one file, so last write wins and
        # the store can never alias two payloads under one identity.
        store = SolutionStore(tmp_path, max_entries=8)
        digest, first = _entry(5)
        _, second = _entry(9)
        assert solution_to_dict(first) != solution_to_dict(second)
        store.put(digest, first)
        store.put(digest, second)
        assert len(store) == 1
        assert solution_to_dict(store.get(digest)) == solution_to_dict(second)

    def test_internal_digest_mismatch_is_dropped(self, tmp_path):
        # An artifact whose embedded digest disagrees with its filename is
        # a collision/tamper signal: reject, delete, count as a miss.
        store = SolutionStore(tmp_path)
        digest, solution = _entry(5)
        path = store.put(digest, solution)
        document = json.loads(path.read_text())
        document["digest"] = "0" * 64
        path.write_text(json.dumps(document))
        misses = store.misses
        assert store.get(digest) is None
        assert not path.exists()
        assert store.misses == misses + 1


class TestEvictedRecovery:
    def test_evicted_artifact_resolves_bit_identical(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=1)
        digest, solution = _entry(5)
        original = solution_to_dict(solution)
        original_text = store.put(digest, solution).read_text()
        store.put(*_entry(6))  # evicts the first artifact
        assert store.get(digest) is None
        # Re-solving the same spec reconstructs the identical solution,
        # and re-storing it reproduces the identical artifact bytes.
        resolved = solve(log_pattern(), n_max=5, cache=False).solution
        assert solution_to_dict(resolved) == original
        store2 = SolutionStore(tmp_path / "fresh", max_entries=1)
        assert store2.put(digest, resolved).read_text() == original_text
        assert solution_to_dict(store2.get(digest)) == original
