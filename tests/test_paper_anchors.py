"""The reproduction certificate: every exact paper anchor in one file.

Each assertion here corresponds to a number printed in the paper's text
(not measured quantities like wall time).  If this file passes, the
implementation agrees with the publication on every verbatim-checkable
fact.  The tolerance-based comparisons (storage blocks within rounding,
op-count orders of magnitude) live in the benchmark harness.
"""

from repro.baselines import ltb_overhead_elements, ltb_partition
from repro.core import (
    derive_alpha,
    fast_nc,
    minimize_nf,
    ours_overhead_elements,
    partition,
    same_size_sweep,
)
from repro.eval import (
    PAPER_CASESTUDY_SWEEP,
    PAPER_LOG_BANKS,
    PAPER_TABLE1,
)
from repro.patterns import BENCHMARKS, EXPECTED_SIZES, benchmark_pattern, log_pattern


class TestSection2:
    """Motivational example (640x480 frame, LoG pattern)."""

    def test_13_of_25_taps(self):
        assert log_pattern().size == 13
        assert log_pattern().bounding_box_volume == 25

    def test_ours_640_extra_positions(self):
        assert ours_overhead_elements((640, 480), 13) == 640

    def test_ltb_5450_extra_elements(self):
        assert ltb_overhead_elements((640, 480), 13) == 5450

    def test_7_bank_two_cycle_alternative(self):
        solution = partition(log_pattern(), n_max=10)
        assert solution.n_banks == 7
        banks = solution.bank_indices()
        assert max(banks.count(b) for b in set(banks)) == 2


class TestSection51CaseStudy:
    def test_d0_d1_alpha(self):
        transform = derive_alpha(log_pattern())
        assert transform.extents == (5, 5)
        assert transform.alpha == (5, 1)

    def test_z_values(self):
        shifted = log_pattern().translated((2, 2))
        _, transform, z = minimize_nf(shifted)
        assert sorted(z) == [14, 18, 19, 20, 22, 23, 24, 25, 26, 28, 29, 30, 34]

    def test_nf_13(self):
        n_f, _, _ = minimize_nf(log_pattern())
        assert n_f == 13

    def test_fig2b_bank_indices(self):
        solution = partition(log_pattern().translated((2, 2)))
        assert tuple(solution.bank_indices()) == PAPER_LOG_BANKS

    def test_fast_approach_f2_nc7(self):
        assert fast_nc(13, 10) == (7, 2)

    def test_delta_table_n1_to_10(self):
        sweep = same_size_sweep(log_pattern(), 10)
        assert sweep.conflicts_by_n[1:] == PAPER_CASESTUDY_SWEEP

    def test_minimum_delta_at_7_or_9(self):
        sweep = same_size_sweep(log_pattern(), 10)
        assert sweep.best_candidates == (7, 9)


class TestTable1Structure:
    def test_pattern_sizes(self):
        for name in BENCHMARKS:
            assert benchmark_pattern(name).size == EXPECTED_SIZES[name], name

    def test_every_bank_count_both_algorithms(self):
        for name in BENCHMARKS:
            pattern = benchmark_pattern(name)
            published = PAPER_TABLE1[name]
            assert partition(pattern).n_banks == published["ours"].n_banks, name
            assert (
                ltb_partition(pattern).solution.n_banks
                == published["ltb"].n_banks
            ), name

    def test_median_divides_every_resolution(self):
        """'our bank number is 8, which can divide all array length so the
        storage overhead is 0 for all memory sizes'."""
        for w in (480, 720, 1080, 1600, 2160):
            assert w % 8 == 0

    def test_gaussian_ltb_divides_every_resolution(self):
        """'LTB offers a solution of ... 10' with zero overhead rows."""
        for w in (480, 720, 1080, 1600, 2160):
            assert w % 10 == 0

    def test_log_remainders_quoted_in_text(self):
        """'⌈480/13⌉13−480 = 1' and '⌈1600/13⌉13−1600 = 12'."""
        assert -(-480 // 13) * 13 - 480 == 1
        assert -(-1600 // 13) * 13 - 1600 == 12


class TestSection442:
    def test_max_overhead_bound(self):
        """ΔW ≤ (N−1)·∏_{k<n-1} w_k for every benchmark and resolution."""
        from repro.core import max_overhead_elements
        from repro.patterns import benchmark_shape

        for name in BENCHMARKS:
            n = partition(benchmark_pattern(name)).n_banks
            for resolution in ("SD", "HD", "FullHD", "WQXGA", "4K"):
                shape = benchmark_shape(name, resolution)
                assert ours_overhead_elements(shape, n) <= max_overhead_elements(
                    shape, n
                ), (name, resolution)
