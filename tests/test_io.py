"""Tests for JSON serialization of partitioning artifacts."""

import json

import pytest

from repro.core import BankMapping, partition, widen_solution
from repro.io import (
    SerializationError,
    load_mapping,
    load_solution,
    mapping_from_dict,
    mapping_to_dict,
    pattern_from_dict,
    pattern_to_dict,
    save_mapping,
    save_solution,
    solution_from_dict,
    solution_to_dict,
)
from repro.patterns import log_pattern, se_pattern


class TestPatternRoundtrip:
    def test_roundtrip(self):
        p = log_pattern()
        assert pattern_from_dict(pattern_to_dict(p)) == p

    def test_name_preserved(self):
        p = se_pattern()
        assert pattern_from_dict(pattern_to_dict(p)).name == "se"

    def test_malformed(self):
        with pytest.raises(SerializationError):
            pattern_from_dict({"name": "x"})


class TestSolutionRoundtrip:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: partition(log_pattern()),
            lambda: partition(log_pattern(), n_max=10),
            lambda: partition(log_pattern(), n_max=10, same_size=False),
            lambda: widen_solution(partition(log_pattern()), 2),
        ],
        ids=["direct", "constrained", "two-level", "wide"],
    )
    def test_roundtrip(self, make):
        original = make()
        restored = solution_from_dict(solution_to_dict(original))
        assert restored == original

    def test_restored_solution_banks_identically(self):
        original = partition(log_pattern())
        restored = solution_from_dict(solution_to_dict(original))
        for element in [(0, 0), (5, 7), (11, 3)]:
            assert restored.bank_of(element) == original.bank_of(element)

    def test_json_serializable(self):
        payload = solution_to_dict(partition(log_pattern()))
        assert json.loads(json.dumps(payload)) == payload

    def test_wrong_format_rejected(self):
        payload = solution_to_dict(partition(log_pattern()))
        payload["format"] = "something-else"
        with pytest.raises(SerializationError):
            solution_from_dict(payload)

    def test_wrong_version_rejected(self):
        payload = solution_to_dict(partition(log_pattern()))
        payload["version"] = 99
        with pytest.raises(SerializationError):
            solution_from_dict(payload)

    def test_inconsistent_payload_rejected(self):
        """A tampered file claiming delta=0 with a conflicting hash fails."""
        payload = solution_to_dict(partition(log_pattern()))
        payload["n_banks"] = 4  # 13 elements cannot be conflict-free in 4 banks
        with pytest.raises(SerializationError, match="inconsistent"):
            solution_from_dict(payload)

    def test_missing_key_rejected(self):
        payload = solution_to_dict(partition(log_pattern()))
        del payload["alpha"]
        with pytest.raises(SerializationError):
            solution_from_dict(payload)


class TestFiles:
    def test_solution_file_roundtrip(self, tmp_path):
        path = tmp_path / "solution.json"
        original = partition(log_pattern(), n_max=10)
        save_solution(original, path)
        assert load_solution(path) == original

    def test_mapping_file_roundtrip(self, tmp_path):
        path = tmp_path / "mapping.json"
        original = BankMapping(solution=partition(se_pattern()), shape=(8, 10))
        save_mapping(original, path)
        restored = load_mapping(path)
        assert restored.shape == original.shape
        assert restored.solution == original.solution
        assert restored.verify_bijective()

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_solution(path)

    def test_mapping_dict_roundtrip(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 10))
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert restored.shape == mapping.shape

    def test_mapping_wrong_format(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 10))
        payload = mapping_to_dict(mapping)
        payload["format"] = "nope"
        with pytest.raises(SerializationError):
            mapping_from_dict(payload)
