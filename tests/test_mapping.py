"""Unit tests for repro.core.mapping (Section 4.4 addressing + overhead)."""

import pytest

from repro.core import (
    BankMapping,
    Pattern,
    bank_contents,
    build_mapping,
    max_overhead_elements,
    ours_overhead_elements,
    partition,
)
from repro.errors import DimensionMismatchError, MappingError
from repro.patterns import log_pattern, se_pattern


def make_mapping(pattern=None, shape=(12, 14), **kwargs):
    solution = partition(pattern or log_pattern(), **kwargs)
    return BankMapping(solution=solution, shape=shape)


class TestOverheadFormulas:
    def test_paper_log_sd_anchor(self):
        # Section 2: 640 extra storage positions at 640x480, N = 13.
        assert ours_overhead_elements((640, 480), 13) == 640

    def test_zero_when_divisible(self):
        assert ours_overhead_elements((640, 480), 8) == 0

    def test_3d_pads_only_last_dim(self):
        # 400 -> 405 for N = 27: 5 * 640 * 480.
        assert ours_overhead_elements((640, 480, 400), 27) == 5 * 640 * 480

    def test_max_overhead_bound(self):
        for n in range(1, 30):
            assert ours_overhead_elements((640, 480), n) <= max_overhead_elements(
                (640, 480), n
            )

    def test_max_overhead_value(self):
        assert max_overhead_elements((640, 480), 13) == 12 * 640

    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            ours_overhead_elements((640, 480), 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(DimensionMismatchError):
            ours_overhead_elements((640, 0), 13)


class TestBankMappingGeometry:
    def test_bank_shape_pads_last_dim(self):
        mapping = make_mapping(shape=(12, 14))
        # 13 banks, w1 = 14 -> K = ceil(14/13) = 2.
        assert mapping.rows_per_bank == 2
        assert mapping.bank_shape == (12, 2)

    def test_total_and_overhead(self):
        mapping = make_mapping(shape=(12, 14))
        assert mapping.original_elements == 168
        assert mapping.total_bank_elements == 13 * 24
        assert mapping.overhead_elements == 13 * 24 - 168

    def test_overhead_matches_closed_form(self):
        for shape in [(12, 14), (10, 26), (7, 13)]:
            mapping = make_mapping(shape=shape)
            assert mapping.overhead_elements == ours_overhead_elements(shape, 13)

    def test_dimension_mismatch_raises(self):
        solution = partition(log_pattern())
        with pytest.raises(DimensionMismatchError):
            BankMapping(solution=solution, shape=(12, 14, 5))

    def test_build_mapping_helper(self):
        mapping = build_mapping(partition(se_pattern()), (10, 10))
        assert mapping.n_banks == 5


class TestAddressing:
    def test_bank_of_matches_solution(self):
        mapping = make_mapping()
        for element in [(0, 0), (3, 7), (11, 13)]:
            assert mapping.bank_of(element) == mapping.solution.bank_of(element)

    def test_out_of_range_element(self):
        mapping = make_mapping()
        with pytest.raises(MappingError):
            mapping.bank_of((12, 0))
        with pytest.raises(MappingError):
            mapping.offset_of((0, 14))

    def test_wrong_dimensionality(self):
        mapping = make_mapping()
        with pytest.raises(DimensionMismatchError):
            mapping.address_of((1, 2, 3))

    def test_offsets_within_bank_size(self):
        mapping = make_mapping()
        for element in mapping.iter_elements():
            bank, offset = mapping.address_of(element)
            assert 0 <= offset < mapping.bank_size(bank)


class TestBijectivity:
    def test_direct_scheme_exhaustive(self):
        assert make_mapping(shape=(12, 14)).verify_bijective()

    def test_odd_sizes(self):
        # w1 not divisible by N, several shapes.
        for shape in [(7, 15), (9, 13), (6, 27)]:
            assert make_mapping(shape=shape).verify_bijective(), shape

    def test_divisible_sizes_have_zero_overhead(self):
        mapping = make_mapping(shape=(6, 26))
        assert mapping.overhead_elements == 0
        assert mapping.verify_bijective()

    def test_constrained_same_size_scheme(self):
        mapping = make_mapping(shape=(8, 21), n_max=10)
        assert mapping.n_banks == 7
        assert mapping.verify_bijective()

    def test_two_level_scheme(self):
        mapping = make_mapping(shape=(8, 20), n_max=10, same_size=False)
        assert mapping.solution.scheme == "two-level"
        assert mapping.verify_bijective()

    def test_3d_mapping(self):
        from repro.patterns import sobel3d_pattern

        solution = partition(sobel3d_pattern())
        mapping = BankMapping(solution=solution, shape=(5, 6, 29))
        assert mapping.verify_bijective()

    def test_sampled_verification_large_array(self):
        mapping = make_mapping(shape=(640, 480))
        assert mapping.verify_bijective(sample_limit=20000)

    def test_detects_collisions_in_broken_mapping(self):
        """A deliberately broken transform must be caught."""
        from repro.core import LinearTransform, PartitionSolution

        square = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        # alpha = (0, 0) collapses the address computation entirely: every
        # element of a row maps to the same (bank, offset).
        broken = PartitionSolution(
            pattern=square,
            transform=LinearTransform(alpha=(0, 0)),
            n_banks=4,
            n_unconstrained=4,
        )
        mapping = BankMapping(solution=broken, shape=(4, 4))
        with pytest.raises(MappingError):
            mapping.verify_bijective()

    def test_nondegenerate_transform_stays_bijective(self):
        """Bank conflicts for a pattern do not imply address collisions:
        alpha = (1, 1) conflicts on the unit square yet remains a valid
        (bijective) storage mapping."""
        from repro.core import LinearTransform, PartitionSolution

        square = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        conflicting = PartitionSolution(
            pattern=square,
            transform=LinearTransform(alpha=(1, 1)),
            n_banks=4,
            n_unconstrained=4,
            delta_ii=1,
        )
        mapping = BankMapping(solution=conflicting, shape=(4, 4))
        assert mapping.verify_bijective()


class TestTwoLevelSizes:
    def test_uneven_bank_sizes(self):
        mapping = make_mapping(shape=(8, 26), n_max=10, same_size=False)
        sizes = [mapping.bank_size(b) for b in range(mapping.n_banks)]
        # 13 inner banks folded into 7: six banks hold 2 inner banks, one holds 1.
        assert sorted(set(sizes)) == [mapping.inner_bank_size, 2 * mapping.inner_bank_size]
        assert sizes.count(mapping.inner_bank_size) == 1

    def test_total_matches_sum(self):
        mapping = make_mapping(shape=(8, 26), n_max=10, same_size=False)
        assert mapping.total_bank_elements == sum(
            mapping.bank_size(b) for b in range(mapping.n_banks)
        )

    def test_bank_size_range_check(self):
        mapping = make_mapping()
        with pytest.raises(ValueError):
            mapping.bank_size(13)


class TestBankContents:
    def test_every_element_stored_once(self):
        mapping = make_mapping(shape=(6, 13))
        contents = bank_contents(mapping)
        stored = [e for bank in contents for e in bank if e != ()]
        assert sorted(stored) == sorted(mapping.iter_elements())

    def test_padding_slots_marked_empty(self):
        mapping = make_mapping(shape=(6, 14))
        contents = bank_contents(mapping)
        padding = sum(1 for bank in contents for e in bank if e == ())
        assert padding == mapping.overhead_elements
