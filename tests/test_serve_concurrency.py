"""The coalescing invariant under real concurrent load.

The ISSUE's acceptance proof: sixteen clients hammering four distinct
patterns (translated copies included) must trigger **exactly four**
underlying solves, and every response must decode bit-identical to a
direct in-process :func:`repro.core.solver.solve` of the same spec.

The obs registry is process-global, so every assertion works on
before/after counter deltas, never absolutes.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.solver import solve
from repro.io import solution_from_dict
from repro.obs import registry
from repro.patterns import log_pattern, median_pattern, prewitt_pattern, se_pattern
from repro.serve import ServeClient, serve_in_thread

# Thread soak + real HTTP round-trips: the priciest tier-1 module.
pytestmark = pytest.mark.slow

#: Four distinct canonical solves, each requested by four clients — two of
#: them as translated copies, which must coalesce onto the canonical job.
_DISTINCT = [
    ("log", log_pattern),
    ("se", se_pattern),
    ("median", median_pattern),
    ("prewitt", prewitt_pattern),
]
N_CLIENTS = 16


def _counters() -> dict:
    return dict(registry().snapshot()["counters"])


def _delta(before: dict, after: dict, name: str) -> int:
    return after.get(name, 0) - before.get(name, 0)


class TestCoalescingInvariant:
    def test_16_clients_4_patterns_exactly_4_solves(self, tmp_path):
        # solve_delay_s keeps the first batch in flight long enough that the
        # barrier-released stampede genuinely overlaps it.
        before = _counters()
        results: dict = {}
        errors: list = []
        barrier = threading.Barrier(N_CLIENTS)

        with serve_in_thread(
            store_dir=str(tmp_path / "store"), solve_delay_s=0.05
        ) as srv:

            def worker(idx: int) -> None:
                name, factory = _DISTINCT[idx % len(_DISTINCT)]
                pattern = factory()
                if idx >= 8:  # half the clients ask for translated copies
                    pattern = pattern.translated((idx, 2 * idx + 1))
                try:
                    barrier.wait(timeout=30)
                    with ServeClient(port=srv.port) as client:
                        results[idx] = (
                            name,
                            pattern,
                            client.solve(pattern=pattern, n_max=10),
                        )
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append((idx, exc))

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            store_entries = srv.server.store.stats()["entries"]
        after = _counters()

        assert not errors
        assert len(results) == N_CLIENTS

        # Exactly one underlying solve per distinct canonical pattern.
        assert _delta(before, after, "solve.cache.misses") == len(_DISTINCT)
        scheduled = _delta(before, after, "serve.coalesce.scheduled")
        attached = _delta(before, after, "serve.coalesce.attached")
        assert scheduled == len(_DISTINCT)
        assert attached == N_CLIENTS - len(_DISTINCT)
        assert _delta(before, after, "serve.coalesce.rejected") == 0

        # One artifact per distinct solve landed in the store.
        assert store_entries == len(_DISTINCT)

        # Every response is bit-identical to a direct in-process solve of
        # the *caller's own* spec (translated patterns get their offsets
        # back, not the canonical ones).
        for idx, (name, pattern, doc) in results.items():
            direct = solve(pattern, n_max=10, cache=False)
            assert solution_from_dict(doc["solution"]) == direct.solution, (
                idx,
                name,
            )

    def test_sequential_repeats_attach_to_cache_not_solver(self, tmp_path):
        before = _counters()
        with serve_in_thread(store_dir=str(tmp_path / "store")) as srv:
            with ServeClient(port=srv.port) as client:
                docs = [client.solve(benchmark="log", n_max=10) for _ in range(5)]
        after = _counters()
        assert _delta(before, after, "solve.cache.misses") == 1
        assert len({d["key"] for d in docs}) == 1
        assert all(d["solution"] == docs[0]["solution"] for d in docs)


class TestConcurrentMixedTraffic:
    """Distinct and duplicate requests racing: no lost responses, no extras."""

    @pytest.mark.parametrize("n_max_values", [(6, 8, 10, 12)])
    def test_distinct_n_max_do_not_coalesce(self, tmp_path, n_max_values):
        # Same pattern, different n_max → different solve keys → no sharing.
        before = _counters()
        results: dict = {}
        barrier = threading.Barrier(len(n_max_values))

        with serve_in_thread(
            store_dir=str(tmp_path / "store"), solve_delay_s=0.02
        ) as srv:

            def worker(n_max: int) -> None:
                barrier.wait(timeout=30)
                with ServeClient(port=srv.port) as client:
                    results[n_max] = client.solve(benchmark="log", n_max=n_max)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in n_max_values
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        after = _counters()

        assert _delta(before, after, "solve.cache.misses") == len(n_max_values)
        assert len({doc["key"] for doc in results.values()}) == len(n_max_values)
        for n_max, doc in results.items():
            direct = solve(log_pattern(), n_max=n_max, cache=False)
            assert solution_from_dict(doc["solution"]) == direct.solution
