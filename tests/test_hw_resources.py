"""Unit tests for FPGA resource estimation."""

import pytest

from repro.core import BankMapping, partition
from repro.hw import (
    DE2_115,
    ResourceEstimate,
    address_bits,
    estimate_resources,
    modulo_cost,
    mux_cost,
)
from repro.patterns import log_pattern, median_pattern, se_pattern


def mapping_for(pattern, shape=(64, 64), **kwargs):
    return BankMapping(solution=partition(pattern, **kwargs), shape=shape)


class TestPrimitiveCosts:
    def test_mux_cost(self):
        assert mux_cost(2, 16) == 16
        assert mux_cost(13, 16) == 12 * 16

    def test_mux_validation(self):
        with pytest.raises(ValueError):
            mux_cost(0, 16)

    def test_modulo_power_of_two_free(self):
        assert modulo_cost(8, 20) == 0
        assert modulo_cost(1, 20) == 0

    def test_modulo_general(self):
        assert modulo_cost(13, 20) == 400

    def test_modulo_validation(self):
        with pytest.raises(ValueError):
            modulo_cost(0, 20)

    def test_address_bits(self):
        assert address_bits((640, 480)) == 19
        assert address_bits((1,)) == 1


class TestEstimates:
    def test_log_estimate_structure(self):
        est = estimate_resources(mapping_for(log_pattern()))
        assert est.memory_blocks >= 13  # one block minimum per bank
        assert est.mux_luts == 13 * mux_cost(13, 16)
        assert est.multipliers == 13  # alpha = (5, 1): one non-unit term per lane
        assert est.total_luts == est.mux_luts + est.addr_luts

    def test_power_of_two_banks_cheaper_addressing(self):
        """Median's 8 banks make the modulo free; LoG's 13 do not."""
        log_est = estimate_resources(mapping_for(log_pattern()))
        median_est = estimate_resources(mapping_for(median_pattern()))
        log_per_lane = log_est.addr_luts / 13
        median_per_lane = median_est.addr_luts / 7
        assert median_per_lane < log_per_lane

    def test_more_banks_more_muxes(self):
        five = estimate_resources(mapping_for(se_pattern()))
        thirteen = estimate_resources(mapping_for(log_pattern()))
        assert thirteen.mux_luts > five.mux_luts

    def test_two_level_pays_extra_modulo(self):
        direct = estimate_resources(mapping_for(log_pattern(), shape=(64, 65)))
        folded = estimate_resources(
            mapping_for(log_pattern(), shape=(64, 65), n_max=10, same_size=False)
        )
        # folded uses fewer banks (7 < 13) but two modulos per lane
        assert folded.memory_blocks <= direct.memory_blocks


class TestPlatform:
    def test_de2_115_fits_log_at_qvga(self):
        # A full 16-bit SD frame (4.9 Mb) exceeds the board's 432 M9K
        # blocks (3.9 Mb) with or without banking; a QVGA tile fits.
        est = estimate_resources(mapping_for(log_pattern(), shape=(320, 240)))
        assert DE2_115.fits(est)

    def test_de2_115_cannot_hold_16bit_sd_frame(self):
        est = estimate_resources(mapping_for(log_pattern(), shape=(640, 480)))
        assert est.memory_blocks > DE2_115.total_blocks

    def test_utilization_fractions(self):
        est = estimate_resources(mapping_for(se_pattern(), shape=(64, 64)))
        util = DE2_115.utilization(est)
        assert 0 <= util["blocks"] <= 1
        assert 0 <= util["luts"] <= 1

    def test_oversized_design_rejected(self):
        huge = ResourceEstimate(
            memory_blocks=10_000, mux_luts=0, addr_luts=0, multipliers=0
        )
        assert not DE2_115.fits(huge)
