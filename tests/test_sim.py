"""Unit tests for the simulation package (trace, memsim, engine, functional)."""

import numpy as np
import pytest

from repro.core import BankMapping, partition
from repro.errors import SimulationError
from repro.patterns import kernel_for, log_pattern, se_pattern
from repro.sim import (
    PipelineModel,
    banked_model,
    banked_stencil,
    golden_stencil,
    iteration_domain,
    pattern_trace,
    serialized_model,
    simulate_sweep,
    simulate_unpartitioned,
    speedup_vs_unpartitioned,
    trace_addresses,
    verify_banked_stencil,
)


class TestTrace:
    def test_domain_matches_paper_bounds(self):
        # Fig. 1(b) anchors the 5x5 window at its center, giving bounds
        # 2..w-3; our canonical pattern is corner-anchored, so centering it
        # reproduces the paper's loop bounds.
        centered = log_pattern().translated((-2, -2))
        domain = list(iteration_domain(centered, (10, 10)))
        rows = {s[0] for s in domain}
        assert min(rows) == 2 and max(rows) == 7

    def test_domain_too_small_raises(self):
        with pytest.raises(SimulationError):
            list(iteration_domain(log_pattern(), (4, 10)))

    def test_trace_reads_stay_in_bounds(self):
        trace = pattern_trace(log_pattern(), (10, 12))
        for iteration in trace:
            for (r, c) in iteration.reads:
                assert 0 <= r < 10 and 0 <= c < 12

    def test_trace_limit(self):
        trace = pattern_trace(log_pattern(), (20, 20), limit=5)
        assert len(trace) == 5

    def test_trace_step(self):
        dense = pattern_trace(se_pattern(), (10, 10))
        strided = pattern_trace(se_pattern(), (10, 10), step=2)
        assert len(strided) < len(dense)

    def test_flatten(self):
        trace = pattern_trace(se_pattern(), (6, 6), limit=2)
        assert len(list(trace_addresses(trace))) == 10

    def test_dimension_mismatch(self):
        with pytest.raises(SimulationError):
            pattern_trace(log_pattern(), (10, 10, 10))

    def test_bad_step(self):
        with pytest.raises(SimulationError):
            pattern_trace(se_pattern(), (8, 8), step=0)

    def test_step_and_limit_compose(self):
        # limit truncates the *strided* domain: the first 5 of the 4x4 grid
        # of even offsets, in row-major order.
        trace = pattern_trace(se_pattern(), (10, 10), step=2, limit=5)
        assert [it.offset for it in trace] == [
            (0, 0), (0, 2), (0, 4), (0, 6), (2, 0)
        ]

    def test_limit_beyond_domain_is_harmless(self):
        dense = pattern_trace(se_pattern(), (10, 10))
        assert pattern_trace(se_pattern(), (10, 10), limit=10_000) == dense

    def test_step_larger_than_domain(self):
        # A stride that overshoots every dimension still yields the first
        # offset of each range: exactly one iteration.
        trace = pattern_trace(se_pattern(), (10, 10), step=100)
        assert len(trace) == 1
        assert trace[0].offset == (0, 0)

    def test_limit_zero_empty_trace_raises(self):
        with pytest.raises(SimulationError, match="empty trace"):
            pattern_trace(se_pattern(), (10, 10), limit=0)


class TestMemsim:
    def test_unconstrained_is_single_cycle(self):
        mapping = BankMapping(solution=partition(log_pattern()), shape=(12, 14))
        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1
        assert report.measured_ii == 1.0
        assert report.measured_delta_ii == 0

    def test_constrained_matches_claim(self):
        solution = partition(log_pattern(), n_max=10)
        mapping = BankMapping(solution=solution, shape=(12, 21))
        report = simulate_sweep(mapping)
        assert report.measured_delta_ii == solution.delta_ii == 1

    def test_histogram_sums_to_iterations(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(9, 10))
        report = simulate_sweep(mapping)
        assert sum(report.cycle_histogram.values()) == report.iterations

    def test_unpartitioned_baseline(self):
        assert simulate_unpartitioned(13, 100) == 1300
        assert simulate_unpartitioned(13, 100, ports=2) == 700

    def test_unpartitioned_validation(self):
        with pytest.raises(SimulationError):
            simulate_unpartitioned(0, 10)

    def test_speedup_equals_bank_parallelism(self):
        mapping = BankMapping(solution=partition(log_pattern()), shape=(12, 14))
        report = simulate_sweep(mapping)
        assert speedup_vs_unpartitioned(report, 13) == pytest.approx(13.0)

    def test_custom_array_verified(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 8))
        data = np.full((8, 8), 7, dtype=np.int64)
        report = simulate_sweep(mapping, array=data)
        assert report.iterations > 0

    def test_speedup_ports_aware(self):
        # Dual-port banks must be compared against a dual-port monolith:
        # the baseline serves ceil(13/2) = 7 reads per cycle, not 13.
        mapping = BankMapping(solution=partition(log_pattern()), shape=(12, 14))
        report = simulate_sweep(mapping, ports_per_bank=2)
        assert report.ports_per_bank == 2
        assert report.measured_ii == 1.0
        assert speedup_vs_unpartitioned(report, 13) == pytest.approx(7.0)

    def test_report_roundtrip(self):
        import json

        solution = partition(log_pattern(), n_max=10)
        mapping = BankMapping(solution=solution, shape=(12, 21))
        report = simulate_sweep(mapping)
        payload = report.to_dict()
        json.dumps(payload)  # must be JSON-friendly as-is
        restored = type(report).from_dict(payload)
        assert restored == report
        assert restored.measured_ii == report.measured_ii
        assert restored.measured_delta_ii == report.measured_delta_ii

    def test_verify_flag_gates_corruption_check(self):
        memory_array = np.arange(72, dtype=np.int64).reshape(8, 9)

        class LyingMapping(BankMapping):
            """Routes one element to the wrong bank slot."""

            def offset_of(self, element, ops=None):
                offset = super().offset_of(element, ops)
                if tuple(element) == (4, 4):
                    return (offset + 1) % self.bank_size(self.bank_of(element))
                return offset

        lying = LyingMapping(solution=partition(se_pattern()), shape=(8, 9))
        with pytest.raises(SimulationError):
            simulate_sweep(lying, array=memory_array)
        # Opting out of verification trades the safety net for speed: the
        # same corrupted mapping now completes (with bogus data).
        report = simulate_sweep(lying, array=memory_array, verify=False)
        assert report.iterations > 0


class TestPipelineModel:
    def test_total_cycles(self):
        model = PipelineModel(iterations=100, base_ii=1, delta_ii=0, depth=5)
        assert model.total_cycles == 5 + 99

    def test_delta_scales_linearly(self):
        base = PipelineModel(iterations=100, delta_ii=0)
        slow = PipelineModel(iterations=100, delta_ii=1)
        assert slow.total_cycles - base.total_cycles == 99

    def test_speedup_over(self):
        fast = banked_model(1000, 0)
        slow = serialized_model(1000, 13)
        assert fast.speedup_over(slow) > 12

    def test_speedup_requires_same_trips(self):
        with pytest.raises(SimulationError):
            banked_model(10, 0).speedup_over(banked_model(20, 0))

    def test_validation(self):
        with pytest.raises(SimulationError):
            PipelineModel(iterations=0)
        with pytest.raises(SimulationError):
            PipelineModel(iterations=1, base_ii=0)
        with pytest.raises(SimulationError):
            PipelineModel(iterations=1, delta_ii=-1)


class TestFunctional:
    def test_golden_log_on_impulse(self):
        image = np.zeros((9, 9), dtype=np.int64)
        image[4, 4] = 1
        out = golden_stencil(image, kernel_for("log"))
        # impulse response reproduces the flipped kernel; center tap:
        assert out[2, 2] == 16

    def test_golden_shape(self):
        out = golden_stencil(np.zeros((10, 12)), kernel_for("log"))
        assert out.shape == (6, 8)

    def test_golden_validation(self):
        with pytest.raises(SimulationError):
            golden_stencil(np.zeros((3, 3)), kernel_for("log"))
        with pytest.raises(SimulationError):
            golden_stencil(np.zeros((9, 9, 9)), kernel_for("log"))

    @pytest.mark.parametrize("operator", ["log", "se", "median", "gaussian"])
    def test_banked_matches_golden(self, operator):
        from repro.patterns import benchmark_pattern

        rng = np.random.default_rng(1)
        image = rng.integers(0, 255, (14, 15))
        pattern = benchmark_pattern(operator)
        mapping = BankMapping(solution=partition(pattern), shape=image.shape)
        ok, result = verify_banked_stencil(mapping, image, kernel_for(operator))
        assert ok
        assert result.measured_ii == 1.0

    def test_banked_constrained_still_correct(self):
        rng = np.random.default_rng(2)
        image = rng.integers(0, 255, (12, 21))
        solution = partition(log_pattern(), n_max=10)
        mapping = BankMapping(solution=solution, shape=image.shape)
        ok, result = verify_banked_stencil(mapping, image, kernel_for("log"))
        assert ok
        assert result.worst_cycles == 2

    def test_kernel_outside_pattern_rejected(self):
        image = np.zeros((10, 10), dtype=np.int64)
        mapping = BankMapping(solution=partition(se_pattern()), shape=(10, 10))
        with pytest.raises(SimulationError):
            banked_stencil(mapping, image, kernel_for("log"))

    def test_shape_mismatch_rejected(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(10, 10))
        with pytest.raises(SimulationError):
            banked_stencil(mapping, np.zeros((8, 8)), kernel_for("se"))
