"""Unit tests for the banked-memory fabric."""

import numpy as np
import pytest

from repro.core import BankMapping, partition
from repro.errors import SimulationError
from repro.hw import BankedMemory
from repro.patterns import log_pattern, se_pattern


def make_memory(shape=(12, 14), pattern=None, **kwargs):
    solution = partition(pattern or log_pattern(), **kwargs)
    mapping = BankMapping(solution=solution, shape=shape)
    return BankedMemory(mapping=mapping)


def arange_for(shape):
    return np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)


class TestLoadDump:
    def test_roundtrip(self):
        memory = make_memory()
        data = arange_for((12, 14))
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)

    def test_roundtrip_two_level(self):
        memory = make_memory(shape=(8, 20), n_max=10, same_size=False)
        data = arange_for((8, 20))
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)

    def test_shape_mismatch(self):
        memory = make_memory()
        with pytest.raises(SimulationError):
            memory.load_array(np.zeros((3, 3)))

    def test_dump_before_load(self):
        with pytest.raises(SimulationError):
            make_memory().dump_array()

    def test_total_slots_match_mapping(self):
        memory = make_memory()
        assert memory.total_slots == memory.mapping.total_bank_elements


class TestParallelRead:
    def test_conflict_free_in_one_cycle(self):
        memory = make_memory()
        data = arange_for((12, 14))
        memory.load_array(data)
        window = log_pattern().translated((2, 3))
        result = memory.parallel_read(list(window.offsets))
        assert result.cycles == 1
        assert result.values == [int(data[e]) for e in window.offsets]
        assert len(set(result.banks_touched)) == 13

    def test_constrained_takes_two_cycles(self):
        memory = make_memory(shape=(12, 21), pattern=log_pattern(), n_max=10)
        memory.load_array(arange_for((12, 21)))
        result = memory.read_pattern((2, 3))
        assert result.cycles == 2

    def test_same_bank_reads_serialize(self):
        memory = make_memory(pattern=se_pattern(), shape=(10, 10))
        memory.load_array(arange_for((10, 10)))
        element = (4, 4)
        result = memory.parallel_read([element, element, element])
        assert result.cycles == 3

    def test_uninitialized_read_raises(self):
        memory = make_memory()
        with pytest.raises(SimulationError):
            memory.parallel_read([(0, 0)])

    def test_conflict_counter_increments(self):
        memory = make_memory(shape=(12, 21), pattern=log_pattern(), n_max=10)
        memory.load_array(arange_for((12, 21)))
        memory.read_pattern((2, 3))
        assert memory.total_conflicts > 0


class TestCycleAccounting:
    def test_advance(self):
        memory = make_memory()
        memory.advance(5)
        assert memory.cycle == 5
        with pytest.raises(SimulationError):
            memory.advance(0)

    def test_single_element_access(self):
        memory = make_memory()
        memory.write_element((0, 0), 99)
        memory.advance()
        assert memory.read_element((0, 0)) == 99

    def test_same_cycle_same_bank_raises(self):
        memory = make_memory()
        memory.write_element((0, 0), 1)
        with pytest.raises(SimulationError):
            memory.write_element((0, 0), 2)


class TestUtilization:
    def test_divisible_shape_fully_utilized(self):
        memory = make_memory(shape=(6, 26))
        memory.load_array(arange_for((6, 26)))
        assert all(u == 1.0 for u in memory.utilization().values())

    def test_padding_lowers_utilization(self):
        memory = make_memory(shape=(6, 14))
        memory.load_array(arange_for((6, 14)))
        assert any(u < 1.0 for u in memory.utilization().values())

    def test_ports_validation(self):
        solution = partition(se_pattern())
        mapping = BankMapping(solution=solution, shape=(8, 10))
        with pytest.raises(SimulationError):
            BankedMemory(mapping=mapping, ports_per_bank=0)

    def test_dual_ports_halve_serialization(self):
        solution = partition(se_pattern())
        mapping = BankMapping(solution=solution, shape=(10, 10))
        memory = BankedMemory(mapping=mapping, ports_per_bank=2)
        memory.load_array(arange_for((10, 10)))
        result = memory.parallel_read([(4, 4), (4, 4), (4, 4), (4, 4)])
        assert result.cycles == 2
