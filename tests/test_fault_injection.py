"""Fault-injection tests: the verification machinery must catch defects.

A reproduction whose checkers can never fail proves nothing.  These tests
break things on purpose — corrupt stored data, mis-route a bank, lie about
δ(II), tamper with serialized artifacts — and assert the corresponding
verifier raises or reports the defect.
"""

import numpy as np
import pytest

from repro.core import (
    BankMapping,
    LinearTransform,
    PartitionSolution,
    Pattern,
    partition,
    verify_conflict_free,
)
from repro.errors import MappingError, SimulationError
from repro.hw import BankedMemory
from repro.patterns import kernel_for, log_pattern, se_pattern
from repro.sim import simulate_sweep, verify_banked_stencil


class TestDataCorruption:
    def test_functional_check_catches_flipped_value(self):
        """Flip one stored element; the golden comparison must fail."""
        image = np.arange(12 * 13, dtype=np.int64).reshape(12, 13)
        mapping = BankMapping(solution=partition(log_pattern()), shape=(12, 13))
        memory = BankedMemory(mapping=mapping)
        memory.load_array(image)
        bank, offset = mapping.address_of((5, 6))
        memory.banks[bank].poke(offset, 9999)  # inject the fault
        window = log_pattern().translated((3, 4))  # window covering (5, 6)
        result = memory.parallel_read(list(window.offsets))
        expected = [int(image[e]) for e in window.offsets]
        assert result.values != expected

    def test_sweep_simulator_detects_corruption(self):
        """simulate_sweep cross-checks every read against the array."""
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 9))
        memory_array = np.arange(72, dtype=np.int64).reshape(8, 9)

        class LyingMapping(BankMapping):
            """Routes one element to the wrong bank slot."""

            def offset_of(self, element, ops=None):
                offset = super().offset_of(element, ops)
                if tuple(element) == (4, 4):
                    return (offset + 1) % self.bank_size(self.bank_of(element))
                return offset

        lying = LyingMapping(solution=partition(se_pattern()), shape=(8, 9))
        with pytest.raises((SimulationError, MappingError)):
            simulate_sweep(lying, array=memory_array)


class TestClaimVerification:
    def test_overclaimed_delta_rejected(self):
        """A solution advertising δ = 0 with a conflicting hash fails
        verify_conflict_free."""
        square = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        lying = PartitionSolution(
            pattern=square,
            transform=LinearTransform(alpha=(1, 1)),
            n_banks=4,
            n_unconstrained=4,
            delta_ii=0,  # a lie: (0,1) and (1,0) collide
        )
        assert not verify_conflict_free(lying)

    def test_honest_delta_accepted(self):
        square = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        honest = PartitionSolution(
            pattern=square,
            transform=LinearTransform(alpha=(1, 1)),
            n_banks=4,
            n_unconstrained=4,
            delta_ii=1,
        )
        assert verify_conflict_free(honest)

    def test_stencil_verifier_fails_on_wrong_kernel(self):
        """verify_banked_stencil compares against the golden model of the
        *same* kernel; feeding it corrupted bank content must not pass."""
        image = np.arange(12 * 13, dtype=np.int64).reshape(12, 13)
        mapping = BankMapping(solution=partition(log_pattern()), shape=(12, 13))
        # Sanity: unbroken run passes...
        ok, _ = verify_banked_stencil(mapping, image, kernel_for("log"))
        assert ok
        # ...then poison one element through a wrapper memory.
        from repro.sim import banked_stencil, golden_stencil

        result = banked_stencil(mapping, image, kernel_for("log"))
        result.output[2, 2] += 1  # simulate a datapath bit-flip
        assert not np.array_equal(result.output, golden_stencil(image, kernel_for("log")))


class TestSerializationTampering:
    def test_tampered_alpha_detected(self):
        from repro.io import SerializationError, solution_from_dict, solution_to_dict

        payload = solution_to_dict(partition(log_pattern()))
        payload["alpha"] = [1, 1]  # degenerate transform, same bank count
        with pytest.raises(SerializationError):
            solution_from_dict(payload)

    def test_tampered_delta_detected(self):
        from repro.io import SerializationError, solution_from_dict, solution_to_dict

        payload = solution_to_dict(partition(log_pattern(), n_max=10))
        payload["delta_ii"] = 0  # claims full parallelism with 7 banks
        with pytest.raises(SerializationError):
            solution_from_dict(payload)


class TestBankMisrouting:
    def test_offset_out_of_bank_raises(self):
        """An offset beyond the bank size is caught at verification."""
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 9))

        class OverflowMapping(BankMapping):
            def offset_of(self, element, ops=None):
                return self.bank_size(self.bank_of(element))  # always 1 too far

        broken = OverflowMapping(solution=partition(se_pattern()), shape=(8, 9))
        with pytest.raises(MappingError):
            broken.verify_bijective()

    def test_constant_routing_collides(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 9))

        class ConstantMapping(BankMapping):
            def offset_of(self, element, ops=None):
                return 0

        broken = ConstantMapping(solution=partition(se_pattern()), shape=(8, 9))
        with pytest.raises(MappingError, match="collide"):
            broken.verify_bijective()
