"""The case generator: determinism, stratification, spec validation."""

from __future__ import annotations

import pytest

from repro.verify import CaseSpec, generate_case, iter_cases
from repro.verify.gen import MAX_VOLUME, SCHEMES, STRATA


class TestDeterminism:
    def test_same_seed_same_case(self):
        for index in range(20):
            assert generate_case(7, index) == generate_case(7, index)

    def test_independent_of_global_rng(self):
        import random

        random.seed(0)
        first = [generate_case(3, i) for i in range(10)]
        random.seed(999)
        random.random()
        assert [generate_case(3, i) for i in range(10)] == first

    def test_different_seeds_differ(self):
        a = [generate_case(0, i).to_dict() for i in range(16)]
        b = [generate_case(1, i).to_dict() for i in range(16)]
        assert a != b

    def test_iter_cases_matches_generate(self):
        assert list(iter_cases(6, 4, start=10)) == [
            generate_case(4, i) for i in range(10, 16)
        ]


class TestStratification:
    def test_dims_cycle_1_to_4(self):
        assert [generate_case(0, i).ndim for i in range(8)] == [1, 2, 3, 4] * 2

    def test_all_strata_appear(self):
        labels = {generate_case(0, i).label for i in range(16)}
        assert labels == set(STRATA)

    def test_both_schemes_appear(self):
        schemes = {generate_case(0, i).scheme for i in range(40)}
        assert schemes == set(SCHEMES)

    def test_width1_stratum_has_unit_extent(self):
        for index in range(200):
            case = generate_case(2, index)
            if case.label == "width1" and case.ndim > 1:
                extents = case.pattern().extents
                assert 1 in extents

    def test_dense_box_pattern_is_its_bounding_box(self):
        for index in range(200):
            case = generate_case(2, index)
            if case.label == "dense-box":
                extents = case.pattern().extents
                volume = 1
                for e in extents:
                    volume *= e
                assert len(case.offsets) == volume


class TestBounds:
    def test_volume_cap_holds(self):
        for index in range(300):
            assert generate_case(11, index).volume <= MAX_VOLUME

    def test_shape_always_holds_pattern(self):
        # __post_init__ enforces this; generating 300 cases proves the
        # generator never hands __post_init__ an invalid combination.
        for index in range(300):
            case = generate_case(13, index)
            assert all(
                w >= e for w, e in zip(case.shape, case.pattern().extents)
            )


class TestSpecValidation:
    def test_round_trip(self):
        for index in range(12):
            case = generate_case(5, index)
            assert CaseSpec.from_dict(case.to_dict()) == case

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            CaseSpec(0, 0, "t", ((0,), (1,)), (4,), None, "three-level")

    def test_shape_dimensionality_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            CaseSpec(0, 0, "t", ((0,), (1,)), (4, 4), None, "same-size")

    def test_unnormalized_offsets_rejected(self):
        with pytest.raises(ValueError, match="normalized"):
            CaseSpec(0, 0, "t", ((1,), (2,)), (4,), None, "same-size")

    def test_shape_smaller_than_extents_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            CaseSpec(0, 0, "t", ((0,), (3,)), (3,), None, "same-size")

    def test_nonpositive_n_max_rejected(self):
        with pytest.raises(ValueError, match="n_max"):
            CaseSpec(0, 0, "t", ((0,), (1,)), (4,), 0, "same-size")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            list(iter_cases(-1, 0))
