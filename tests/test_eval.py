"""Unit tests for the evaluation harnesses (Table 1, case study, metrics)."""

import pytest

from repro.eval import (
    PAPER_CASESTUDY_SWEEP,
    PAPER_LOG_BANKS,
    PAPER_MOTIVATION,
    PAPER_TABLE1,
    build_row,
    improvement,
    render_case_study,
    render_table1,
    run_case_study,
    run_ltb,
    run_ours,
    storage_blocks,
)
from repro.eval.metrics import geometric_mean
from repro.eval.table1 import Table1
from repro.patterns import log_pattern


class TestImprovement:
    def test_basic(self):
        assert improvement(100, 20) == 80.0

    def test_negative_when_worse(self):
        assert improvement(10, 20) == -100.0

    def test_zero_baseline_zero_ours(self):
        assert improvement(0, 0) == 0.0

    def test_zero_baseline_nonzero_ours(self):
        assert improvement(0, 5) == -100.0


class TestStorageBlocks:
    def test_paper_anchors(self):
        assert storage_blocks((640, 480), 13, "ours") == 2
        assert storage_blocks((640, 480), 13, "ltb") == 10

    def test_canny_sd_hd_exact(self):
        assert storage_blocks((640, 480), 25, "ours") == 23
        assert storage_blocks((1280, 720), 25, "ours") == 12

    def test_median_zero_everywhere(self):
        for shape in [(640, 480), (1280, 720), (1920, 1080), (2560, 1600), (3840, 2160)]:
            assert storage_blocks(shape, 8, "ours") == 0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            storage_blocks((640, 480), 13, "magic")


class TestRuns:
    def test_run_ours_log(self):
        run = run_ours(log_pattern(), repetitions=3)
        assert run.n_banks == 13
        assert run.operations > 0
        assert run.time_ms > 0

    def test_run_ltb_log(self):
        run = run_ltb(log_pattern(), repetitions=1)
        assert run.n_banks == 13
        assert run.operations > run_ours(log_pattern(), repetitions=1).operations

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0, 0])


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_case_study()

    def test_alpha(self, study):
        assert study.alpha == (5, 1)

    def test_z_values(self, study):
        assert sorted(study.z_values) == [
            14, 18, 19, 20, 22, 23, 24, 25, 26, 28, 29, 30, 34,
        ]

    def test_nf(self, study):
        assert study.n_f == 13

    def test_bank_indices_match_fig2b(self, study):
        assert study.bank_indices == PAPER_LOG_BANKS

    def test_sweep_row_matches_paper(self, study):
        assert study.sweep_row == PAPER_CASESTUDY_SWEEP

    def test_nmax_choices(self, study):
        assert study.fast_nc == 7 and study.fast_rounds == 2
        assert study.same_size_nc == 7
        assert study.same_size_candidates == (7, 9)
        assert study.same_size_delta == 1

    def test_overhead_anchors(self, study):
        assert study.ours_overhead_elements == PAPER_MOTIVATION["ours_overhead_elements"]
        assert study.ltb_overhead_elements == PAPER_MOTIVATION["ltb_overhead_elements"]

    def test_operation_ratio_shape(self, study):
        """Paper: 92 vs 1053 (ratio ~11x).  Accounting conventions differ,
        but ours must be several-fold cheaper."""
        assert study.ltb_operations / study.ours_operations > 3

    def test_render(self, study):
        text = render_case_study(study)
        assert "alpha" in text and "(5, 1)" in text


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def row(self):
        return build_row("log", time_repetitions=2)

    def test_bank_counts(self, row):
        assert row.ours.n_banks == 13
        assert row.ltb.n_banks == 13

    def test_storage_within_paper_tolerance(self, row):
        """Every storage cell within a few blocks of the published value."""
        paper = PAPER_TABLE1["log"]
        for algorithm in ("ours", "ltb"):
            for mine, published in zip(row.storage[algorithm], paper[algorithm].storage_blocks):
                assert abs(mine - published) <= 3, (algorithm, mine, published)

    def test_improvements_positive(self, row):
        assert row.operations_improvement > 50
        assert all(v >= 0 for v in row.storage_improvements())

    def test_render_contains_rows(self, row):
        table = Table1(rows=(row,))
        text = render_table1(table)
        assert "log" in text and "paper" in text and "impr%" in text
