"""Unit tests for the mini-C parser."""

import pytest

from repro.errors import HLSError
from repro.hls import build_nest, log_kernel_nest, parse_kernel


class TestParser:
    def test_minimal_kernel(self):
        nest = parse_kernel(
            "for (i = 0; i <= 3; i++) Y[i] = X[i] + X[i+1];"
        )
        assert nest.trip_count == 4
        assert len(nest.statement.reads) == 2

    def test_declarations(self):
        nest = parse_kernel(
            "array X[8][9]; for (i = 0; i <= 3; i++) Y[i] = X[i][i];"
        )
        assert nest.array_shape("X") == (8, 9)

    def test_nested_loops(self):
        nest = parse_kernel(
            """
            for (i = 1; i <= 4; i++)
              for (j = 1; j <= 6; j++)
                Y[i][j] = X[i-1][j] + X[i+1][j];
            """
        )
        assert nest.loop_vars == ("i", "j")
        assert nest.trip_count == 24

    def test_braced_bodies(self):
        nest = parse_kernel(
            "for (i = 0; i <= 3; i++) { for (j = 0; j <= 3; j++) { Y[i][j] = X[i][j]; } }"
        )
        assert nest.trip_count == 16

    def test_strided_loop(self):
        nest = parse_kernel("for (i = 0; i <= 8; i += 2) Y[i] = X[i];")
        assert nest.loops[0].trip_count == 5

    def test_negative_lower_bound(self):
        nest = parse_kernel("for (i = -2; i <= 2; i++) Y[i] = X[i];")
        assert nest.loops[0].lower == -2

    def test_coefficient_subscripts(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[2*i+1];")
        ref = nest.statement.reads[0]
        assert ref.indices[0].coefficients == (("i", 2),)
        assert ref.indices[0].constant == 1

    def test_scaled_reads(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = 16*X[i] - 2*X[i+1];")
        assert len(nest.statement.reads) == 2

    def test_log_kernel_parses(self):
        nest = log_kernel_nest()
        assert nest.trip_count == 636 * 476
        assert len(nest.statement.reads) == 13
        assert nest.array_shape("X") == (640, 480)


class TestParserErrors:
    def test_wrong_condition_variable(self):
        with pytest.raises(HLSError, match="condition"):
            parse_kernel("for (i = 0; j <= 3; i++) Y[i] = X[i];")

    def test_wrong_increment_variable(self):
        with pytest.raises(HLSError, match="increment"):
            parse_kernel("for (i = 0; i <= 3; j++) Y[i] = X[i];")

    def test_unknown_loop_var_in_subscript(self):
        with pytest.raises(HLSError, match="enclosing loop"):
            parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[k];")

    def test_trailing_garbage(self):
        with pytest.raises(HLSError, match="trailing"):
            parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i]; zzz")

    def test_unexpected_character(self):
        with pytest.raises(HLSError, match="unexpected"):
            parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i] @ 2;")

    def test_missing_subscript(self):
        with pytest.raises(HLSError, match="no subscripts"):
            parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X;")

    def test_empty_loop_range(self):
        with pytest.raises(HLSError):
            parse_kernel("for (i = 5; i <= 3; i++) Y[i] = X[i];")


class TestBuildNest:
    def test_basic(self):
        nest = build_nest(
            [("i", 0, 7), ("j", 0, 7)],
            [("X", (0, 0)), ("X", (1, 1))],
            write=("Y", (0, 0)),
            arrays={"X": (10, 10)},
        )
        assert nest.trip_count == 64
        assert nest.statement.write.array == "Y"
        assert nest.array_shape("X") == (10, 10)

    def test_offset_arity_check(self):
        with pytest.raises(HLSError):
            build_nest([("i", 0, 3)], [("X", (0, 0))])

    def test_requires_loops(self):
        with pytest.raises(HLSError):
            build_nest([], [("X", (0,))])
