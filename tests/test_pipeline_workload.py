"""Tests for the full read+write banked pipeline workload."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads import box_image, noise_image, run_full_pipeline


class TestFullPipeline:
    def test_log_matches_golden(self):
        report = run_full_pipeline(box_image(12, 13), "log")
        assert report.matches_golden
        assert report.read_banks == 13
        assert report.write_banks == 1

    def test_two_cycles_per_iteration(self):
        """One read transaction + one write transaction per iteration."""
        report = run_full_pipeline(noise_image(12, 13, seed=4), "log")
        assert report.cycles_per_iteration == pytest.approx(2.0)

    def test_constrained_reads_cost_more(self):
        full = run_full_pipeline(box_image(12, 21), "log")
        constrained = run_full_pipeline(box_image(12, 21), "log", n_max=10)
        assert constrained.matches_golden
        assert constrained.read_banks == 7
        assert constrained.total_cycles > full.total_cycles

    @pytest.mark.parametrize("operator", ["se", "median", "gaussian"])
    def test_other_operators(self, operator):
        report = run_full_pipeline(noise_image(13, 14, seed=5), operator)
        assert report.matches_golden, operator

    def test_output_shape_valid_mode(self):
        report = run_full_pipeline(box_image(12, 13), "se")
        assert report.output.shape == (10, 11)

    def test_rejects_bad_input(self):
        with pytest.raises(SimulationError):
            run_full_pipeline(np.zeros((4, 4, 4)), "log")
        with pytest.raises(SimulationError):
            run_full_pipeline(box_image(12, 13), "sobel3d")
