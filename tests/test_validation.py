"""Tests for the cross-validation harness itself."""

import pytest

from repro.eval.validation import (
    SCHEMES,
    ValidationCase,
    main_validate,
    run_validation,
    validate_case,
)


class TestValidateCase:
    def test_direct_log(self):
        result = validate_case(
            ValidationCase(benchmark="log", scheme="direct", shape=(8, 16))
        )
        assert result.passed, result.detail

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_on_se(self, scheme):
        result = validate_case(
            ValidationCase(benchmark="se", scheme=scheme, shape=(8, 12))
        )
        assert result.passed, (scheme, result.detail)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            validate_case(
                ValidationCase(benchmark="log", scheme="magic", shape=(8, 16))
            )


class TestRunValidation:
    def test_quick_subset_passes(self):
        report = run_validation(["se", "median"], quick=True)
        assert report.ok, report.summary()
        assert report.passed > 0

    def test_progress_callback(self):
        seen = []
        run_validation(["se"], schemes=("direct",), quick=True, progress=seen.append)
        assert seen and all("se/direct" in s for s in seen)

    def test_summary_format(self):
        report = run_validation(["se"], schemes=("direct",), quick=True)
        assert "passed" in report.summary()

    def test_cli(self, capsys):
        rc = main_validate(["--quick", "--benchmarks", "se"])
        assert rc == 0
        assert "0 failed" in capsys.readouterr().out
