"""Tests for the zero-overhead tail-packed mapping (Section 4.4.2 option 1)."""

import numpy as np
import pytest

from repro.core import (
    BankMapping,
    PackedBankMapping,
    packed_mapping,
    partition,
)
from repro.errors import MappingError
from repro.hw import BankedMemory
from repro.patterns import log_pattern, se_pattern
from repro.sim import simulate_sweep


class TestZeroOverhead:
    @pytest.mark.parametrize("shape", [(8, 20), (6, 14), (9, 13), (7, 25)])
    def test_overhead_is_exactly_zero(self, shape):
        mapping = packed_mapping(partition(log_pattern()), shape)
        assert mapping.overhead_elements == 0
        assert mapping.total_bank_elements == mapping.original_elements

    def test_padded_variant_wastes_where_packed_does_not(self):
        solution = partition(log_pattern())
        padded = BankMapping(solution=solution, shape=(8, 20))
        packed = packed_mapping(solution, (8, 20))
        assert padded.overhead_elements > 0
        assert packed.overhead_elements == 0

    def test_tail_element_count(self):
        mapping = packed_mapping(partition(log_pattern()), (8, 20))
        # w_last = 20, N = 13, K = 1 -> tail rows 13..19 = 7 rows x 8
        assert mapping.tail_elements == 7 * 8

    def test_no_tail_when_divisible(self):
        mapping = packed_mapping(partition(log_pattern()), (6, 26))
        assert mapping.tail_elements == 0
        assert mapping.overhead_elements == 0


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(8, 20), (9, 13), (6, 7), (5, 31)])
    def test_bijective(self, shape):
        mapping = packed_mapping(partition(log_pattern()), shape)
        assert mapping.verify_bijective()

    def test_bank_of_unchanged(self):
        """Packing changes offsets only; bank selection is identical."""
        solution = partition(log_pattern())
        padded = BankMapping(solution=solution, shape=(8, 20))
        packed = packed_mapping(solution, (8, 20))
        for element in padded.iter_elements():
            assert padded.bank_of(element) == packed.bank_of(element)

    def test_prefix_uses_closed_form(self):
        """Elements below K*N get the same in-bank row as the padded
        mapping when w_last is divisible (both reduce to Section 4.4.1)."""
        solution = partition(se_pattern())
        divisible = packed_mapping(solution, (4, 10))
        reference = BankMapping(solution=solution, shape=(4, 10))
        for element in divisible.iter_elements():
            assert divisible.address_of(element) == reference.address_of(element)

    def test_small_last_dimension(self):
        """w_last < N: everything is tail, still bijective, still zero pad."""
        mapping = packed_mapping(partition(log_pattern()), (6, 7))
        assert mapping.prefix_rows == 0
        assert mapping.tail_elements == 42
        assert mapping.overhead_elements == 0
        assert mapping.verify_bijective()

    def test_simulates_single_cycle(self):
        mapping = packed_mapping(partition(log_pattern()), (10, 20))
        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1

    def test_memory_roundtrip(self):
        mapping = packed_mapping(partition(se_pattern()), (6, 11))
        memory = BankedMemory(mapping=mapping)
        data = np.arange(66, dtype=np.int64).reshape(6, 11)
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)

    def test_full_utilization(self):
        """Zero overhead means every slot of every bank is used."""
        mapping = packed_mapping(partition(se_pattern()), (6, 11))
        memory = BankedMemory(mapping=mapping)
        memory.load_array(np.ones((6, 11), dtype=np.int64))
        assert all(u == 1.0 for u in memory.utilization().values())


class TestRestrictions:
    def test_rejects_folded_schemes(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        with pytest.raises(MappingError):
            packed_mapping(solution, (8, 20))

    def test_bank_sizes_sum_to_w(self):
        mapping = packed_mapping(partition(log_pattern()), (8, 20))
        assert sum(mapping.bank_size(b) for b in range(13)) == 160

    def test_bank_sizes_irregular(self):
        """The price of zero overhead: banks are no longer uniform."""
        mapping = packed_mapping(partition(log_pattern()), (8, 20))
        sizes = {mapping.bank_size(b) for b in range(13)}
        assert len(sizes) > 1
