"""Batched engines vs scalar references: equivalence, guards, overhead.

Covers the execution paths added around the scalar reference
implementations.  Engine-equivalence tests parametrize over the shared
``fast_engine``/``sim_engine`` fixtures (``conftest.py``), so the same
bodies exercise the vectorized NumPy engine *and* the compiled native
engine when the extension is built — and skip the native rows with a
visible reason when it is not:

* ``simulate_sweep(engine=...)`` — bit-identical reports across engines,
  dispatch rules for mapping subclasses, attribution equivalence.
* ``same_size_sweep(engine=...)`` — identical results *and* identical op
  charges.
* Disabled-telemetry overhead — no span allocations and zero per-element
  Python mapping calls on the vectorized path.
* Bounded-chunk guards — correctness under tiny chunk budgets and the
  ``element_grid`` materialization cap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BankMapping, Pattern, partition, same_size_sweep
from repro.core.opcount import OpCounter
from repro.core.packed import PackedBankMapping
from repro.core.vectorized import (
    DEFAULT_CHUNK_ELEMENTS,
    chunk_budget,
    element_grid,
    grid_size,
    iter_element_chunks,
)
from repro.errors import MappingError, SimulationError
import importlib

# ``repro.obs`` re-exports a ``tracer`` *function*, shadowing the submodule
# attribute — resolve the module itself for monkeypatching.
tracer_mod = importlib.import_module("repro.obs.tracer")
from repro.obs.conflicts import ConflictTable
from repro.patterns import log_pattern, se_pattern
from repro.patterns.generators import rectangle
from repro.sim import simulate_sweep
from repro.sim.memsim import ENGINES, resolve_engine


def mapping_for(pattern=None, shape=(12, 14), **kwargs):
    return BankMapping(
        solution=partition(pattern or log_pattern(), **kwargs), shape=shape
    )


# -- engine equivalence ----------------------------------------------------


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"ports_per_bank": 2},
            {"step": 2},
            {"limit": 7},
            {"verify": False},
            {"step": 3, "ports_per_bank": 3},
        ],
    )
    def test_reports_bit_identical(self, kwargs, fast_engine):
        mapping = mapping_for()
        scalar = simulate_sweep(mapping, engine="scalar", **kwargs)
        fast = simulate_sweep(mapping, engine=fast_engine, **kwargs)
        assert scalar == fast

    def test_constrained_solution(self, fast_engine):
        mapping = mapping_for(log_pattern(), shape=(19, 23), n_max=4)
        scalar = simulate_sweep(mapping, engine="scalar")
        fast = simulate_sweep(mapping, engine=fast_engine)
        assert scalar == fast
        assert fast.measured_delta_ii > 0  # a constrained run has conflicts

    def test_packed_mapping_supported(self, fast_engine):
        # PackedBankMapping has no fused native spec; the native engine
        # covers it through the hybrid bulk-kernel path.
        mapping = PackedBankMapping(solution=partition(se_pattern()), shape=(9, 13))
        assert simulate_sweep(mapping, engine="scalar") == simulate_sweep(
            mapping, engine=fast_engine
        )

    def test_explicit_array_and_roundtrip(self, fast_engine):
        import json

        mapping = mapping_for(se_pattern(), shape=(9, 10))
        array = np.arange(90, dtype=np.int64).reshape(9, 10) * 3 - 7
        report = simulate_sweep(mapping, array=array, engine=fast_engine)
        assert report == simulate_sweep(mapping, array=array, engine="scalar")
        payload = report.to_dict()
        json.dumps(payload)  # all plain Python scalars, no numpy leakage
        assert type(report).from_dict(payload) == report

    def test_attribution_identical(self, fast_engine):
        mapping = mapping_for(log_pattern(), shape=(15, 17), n_max=5)
        ports = mapping.solution.bank_ports
        scalar_table = ConflictTable(ports)
        fast_table = ConflictTable(ports)
        simulate_sweep(mapping, engine="scalar", conflicts=scalar_table)
        simulate_sweep(mapping, engine=fast_engine, conflicts=fast_table)
        assert scalar_table.cycle_histogram == fast_table.cycle_histogram
        assert (
            scalar_table.observed_bank_conflicts
            == fast_table.observed_bank_conflicts
        )

    def test_default_engine_is_fastest_available(self):
        mapping = mapping_for()
        resolved = resolve_engine(mapping)
        assert resolved in ("vectorized", "native")
        assert simulate_sweep(mapping) == simulate_sweep(mapping, engine=resolved)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            simulate_sweep(mapping_for(), engine="warp")
        assert ENGINES == ("auto", "scalar", "vectorized", "native")


class TestSubclassDispatch:
    """Mappings that override scalar address methods must not be bulk-run."""

    def _lying_mapping(self):
        class LyingMapping(BankMapping):
            def offset_of(self, element, ops=None):
                offset = super().offset_of(element, ops)
                if tuple(element) == (4, 4):
                    return (offset + 1) % self.bank_size(self.bank_of(element))
                return offset

        return LyingMapping(solution=partition(se_pattern()), shape=(8, 9))

    def test_auto_falls_back_to_scalar_and_detects_corruption(self):
        lying = self._lying_mapping()
        array = np.arange(72, dtype=np.int64).reshape(8, 9)
        with pytest.raises(SimulationError, match="data corruption"):
            simulate_sweep(lying, array=array)  # auto → scalar → caught

    def test_forcing_batched_engine_on_subclass_is_an_error(self, fast_engine):
        with pytest.raises(SimulationError, match="stock BankMapping"):
            simulate_sweep(self._lying_mapping(), engine=fast_engine)


class TestEngineErrorPaths:
    def test_clean_run_accepted(self, fast_engine):
        mapping = mapping_for(se_pattern(), shape=(8, 9))
        array = np.arange(72, dtype=np.int64).reshape(8, 9)
        assert simulate_sweep(mapping, array=array, engine=fast_engine).iterations

    def test_empty_trace(self, sim_engine):
        mapping = mapping_for(se_pattern(), shape=(8, 9))
        with pytest.raises(SimulationError, match="empty trace"):
            simulate_sweep(mapping, limit=0, engine=sim_engine)

    def test_too_small_shape(self, sim_engine):
        solution = partition(log_pattern())
        with pytest.raises(SimulationError, match="too small"):
            simulate_sweep(
                BankMapping(solution=solution, shape=(4, 24)), engine=sim_engine
            )

    def test_bad_ports(self, sim_engine):
        with pytest.raises(SimulationError, match="ports_per_bank"):
            simulate_sweep(mapping_for(), ports_per_bank=0, engine=sim_engine)

    def test_conflict_table_port_mismatch(self, sim_engine):
        table = ConflictTable(3)
        with pytest.raises(SimulationError, match="conflict table expects"):
            simulate_sweep(mapping_for(), conflicts=table, engine=sim_engine)


# -- property tests --------------------------------------------------------


@st.composite
def sim_cases(draw):
    coordinate = st.integers(min_value=0, max_value=3)
    offsets = draw(
        st.sets(st.tuples(coordinate, coordinate), min_size=1, max_size=6)
    )
    pattern = Pattern(offsets).normalized()
    extents = pattern.extents
    w0 = draw(st.integers(extents[0] + 1, extents[0] + 6))
    w1 = draw(st.integers(extents[1] + 1, extents[1] + 6))
    n_max = draw(st.one_of(st.none(), st.integers(1, 8)))
    ports = draw(st.integers(1, 3))
    step = draw(st.integers(1, 2))
    return pattern, (w0, w1), n_max, ports, step


@given(case=sim_cases())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_sim_engines_agree(case, fast_engines):
    pattern, shape, n_max, ports, step = case
    mapping = BankMapping(solution=partition(pattern, n_max=n_max), shape=shape)
    scalar = simulate_sweep(
        mapping, ports_per_bank=ports, step=step, engine="scalar"
    )
    for engine in fast_engines:
        fast = simulate_sweep(
            mapping, ports_per_bank=ports, step=step, engine=engine
        )
        assert scalar == fast, engine


@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=8),
    st.integers(1, 40),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_sweep_engines_agree_with_identical_ops(offsets, n_max):
    pattern = Pattern(offsets).normalized()
    scalar_ops, vector_ops = OpCounter(), OpCounter()
    scalar = same_size_sweep(pattern, n_max, ops=scalar_ops, engine="scalar")
    vector = same_size_sweep(pattern, n_max, ops=vector_ops, engine="vectorized")
    assert scalar == vector
    assert scalar_ops.counts == vector_ops.counts


def test_sweep_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown sweep engine"):
        same_size_sweep(log_pattern(), 5, engine="warp")


# -- disabled-telemetry overhead ------------------------------------------


class TestDisabledTelemetryOverhead:
    def test_no_span_objects_allocated(self, monkeypatch):
        """With REPRO_OBS off, the sweep must only touch the shared no-op span."""
        monkeypatch.delenv("REPRO_OBS", raising=False)
        from repro.obs import state

        state.disable()

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("Span allocated while observability is off")

        monkeypatch.setattr(tracer_mod, "Span", boom)
        assert tracer_mod.span("probe") is tracer_mod.NULL_SPAN
        report = simulate_sweep(mapping_for(), engine="vectorized")
        assert report.iterations > 0
        report = simulate_sweep(mapping_for(), engine="scalar")
        assert report.iterations > 0

    def test_fast_path_makes_no_per_element_mapping_calls(
        self, monkeypatch, fast_engine
    ):
        """The fast paths must never fall back to scalar address translation."""
        mapping = mapping_for(log_pattern(), shape=(16, 18), n_max=6)

        def boom(self, element, ops=None):  # pragma: no cover - failure path
            raise AssertionError("per-element mapping call on a batched path")

        monkeypatch.setattr(BankMapping, "bank_of", boom)
        monkeypatch.setattr(BankMapping, "offset_of", boom)
        monkeypatch.setattr(BankMapping, "address_of", boom)
        report = simulate_sweep(mapping, engine=fast_engine, verify=True)
        assert report.iterations > 0


# -- bounded chunks --------------------------------------------------------


class TestChunkGuards:
    def test_chunk_budget_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_BULK_CHUNK", raising=False)
        assert chunk_budget() == DEFAULT_CHUNK_ELEMENTS
        assert chunk_budget(17) == 17
        monkeypatch.setenv("REPRO_BULK_CHUNK", "99")
        assert chunk_budget() == 99
        with pytest.raises(MappingError):
            chunk_budget(0)
        monkeypatch.setenv("REPRO_BULK_CHUNK", "-3")
        with pytest.raises(MappingError):
            chunk_budget()

    def test_iter_element_chunks_covers_grid(self):
        shape = (7, 11)
        blocks = list(iter_element_chunks(shape, chunk=13))
        assert blocks[0][0] == 0
        assert all(len(block) <= 13 for _, block in blocks)
        joined = np.concatenate([block for _, block in blocks])
        assert np.array_equal(joined, element_grid(shape))
        assert len(joined) == grid_size(shape)

    def test_simulation_identical_under_tiny_chunks(self, monkeypatch, fast_engine):
        """A grid far beyond the chunk budget still simulates exactly."""
        mapping = mapping_for(log_pattern(), shape=(20, 21), n_max=5)
        baseline = simulate_sweep(mapping, engine=fast_engine)
        monkeypatch.setenv("REPRO_BULK_CHUNK", "64")  # 420-element grid
        chunked = simulate_sweep(mapping, engine=fast_engine)
        assert chunked == baseline
        assert chunked == simulate_sweep(mapping, engine="scalar")

    def test_element_grid_cap_raises_with_guidance(self, monkeypatch):
        monkeypatch.setenv("REPRO_BULK_MAX", "100")
        with pytest.raises(MappingError, match="iter_element_chunks"):
            element_grid((20, 20))
        # The streaming path is the documented way out — and still works.
        total = sum(len(block) for _, block in iter_element_chunks((20, 20), 64))
        assert total == 400

    def test_sweep_vectorized_respects_chunk_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_BULK_CHUNK", "8")
        pattern = rectangle((3, 5))
        scalar = same_size_sweep(pattern, 30, engine="scalar")
        vector = same_size_sweep(pattern, 30, engine="vectorized")
        assert scalar == vector
