"""Canonical solve cache: keys, hits, escape hatches, warm-sweep reuse."""

from __future__ import annotations

import dataclasses
import importlib

import pytest

from repro.core import Objective, partition, solve, solve_cache
from repro.core.cache import SolveCache, partition_key, solve_key, stable_digest
from repro.core.opcount import OpCounter
from repro.core.pattern import Pattern
from repro.eval.sweeps import overhead_vs_banks, throughput_vs_unroll
from repro.io import pattern_from_dict, pattern_to_dict
from repro.obs import metrics as obs_metrics
from repro.patterns import log_pattern, se_pattern


@pytest.fixture()
def count_solves(monkeypatch):
    """Count calls into the real solver body (cache misses only)."""
    solver_mod = importlib.import_module("repro.core.solver")

    calls = {"n": 0}
    real = solver_mod._solve_impl

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(solver_mod, "_solve_impl", counting)
    return calls


@pytest.fixture()
def count_partitions(monkeypatch):
    # ``repro.core`` re-exports a ``partition`` *function*, shadowing the
    # submodule attribute — resolve the module itself for monkeypatching.
    partition_mod = importlib.import_module("repro.core.partition")

    calls = {"n": 0}
    real = partition_mod._partition_phases

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(partition_mod, "_partition_phases", counting)
    return calls


class TestSolveCacheBasics:
    def test_hit_and_miss_counters(self):
        cache = solve_cache.cache()
        assert (cache.hits, cache.misses) == (0, 0)
        first = solve(log_pattern(), n_max=8)
        assert (cache.hits, cache.misses) == (0, 1)
        second = solve(log_pattern(), n_max=8)
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == second

    def test_registry_counters_mirrored(self):
        reg = obs_metrics.registry()
        reg.reset()
        solve(log_pattern(), n_max=8)
        solve(log_pattern(), n_max=8)
        counters = reg.snapshot()["counters"]
        assert counters["solve.cache.misses"] == 1
        assert counters["solve.cache.hits"] == 1

    def test_distinct_parameters_distinct_entries(self, count_solves):
        solve(log_pattern(), n_max=8)
        solve(log_pattern(), n_max=4)
        solve(log_pattern(), n_max=8, delta_max=2, objective=Objective.BANKS)
        assert count_solves["n"] == 3
        solve(log_pattern(), n_max=8)
        assert count_solves["n"] == 3

    def test_translated_pattern_hits(self, count_solves):
        """Theorem 1: a translate shares the canonical solution."""
        base = se_pattern()
        shifted = Pattern(
            tuple((r + 7, c + 11) for r, c in base.offsets), name="shifted"
        )
        original = solve(base, n_max=8)
        translated = solve(shifted, n_max=8)
        assert count_solves["n"] == 1
        assert translated.solution.n_banks == original.solution.n_banks
        # The cached hit is re-anchored to the *requesting* pattern.
        assert translated.solution.pattern == shifted
        assert original.solution.pattern == base

    def test_cache_false_bypasses(self, count_solves):
        solve(log_pattern(), n_max=8)
        solve(log_pattern(), n_max=8, cache=False)
        assert count_solves["n"] == 2
        assert solve_cache.cache().hits == 0

    def test_env_escape_hatch(self, count_solves, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        solve(log_pattern(), n_max=8)
        solve(log_pattern(), n_max=8)
        assert count_solves["n"] == 2
        assert len(solve_cache.cache()) == 0

    def test_instrumented_calls_bypass(self, count_solves):
        """Op-counted solves must measure real work, never a lookup."""
        solve(log_pattern(), n_max=8)
        ops = OpCounter()
        solve(log_pattern(), n_max=8, ops=ops)
        assert count_solves["n"] == 2
        assert ops.total > 0

    def test_lru_eviction(self):
        cache = SolveCache(maxsize=2)
        sol = partition(log_pattern(), cache=False)
        cache.put("a", sol)
        cache.put("b", sol)
        cache.get("a", log_pattern())  # refresh "a"
        cache.put("c", sol)  # evicts "b"
        assert cache.get("b", log_pattern()) is None
        assert cache.get("a", log_pattern()) is not None
        assert cache.get("c", log_pattern()) is not None
        with pytest.raises(ValueError, match="maxsize"):
            SolveCache(maxsize=0)

    def test_eviction_counter_and_registry_mirror(self):
        reg = obs_metrics.registry()
        reg.reset()
        cache = SolveCache(maxsize=2)
        sol = partition(log_pattern(), cache=False)
        for key in ("a", "b", "c", "d"):
            cache.put(key, sol)
        assert cache.evictions == 2
        assert reg.snapshot()["counters"]["solve.cache.evictions"] == 2
        cache.clear()
        assert cache.evictions == 0

    def test_env_capacity_applied_after_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CACHE_SIZE", "2")
        solve_cache.reset()
        try:
            cache = solve_cache.cache()
            assert cache.maxsize == 2
            solve(log_pattern(), n_max=6)
            solve(log_pattern(), n_max=7)
            solve(log_pattern(), n_max=8)  # evicts the n_max=6 entry
            assert len(cache) == 2
            assert cache.evictions == 1
        finally:
            monkeypatch.delenv("REPRO_SOLVE_CACHE_SIZE")
            solve_cache.reset()

    @pytest.mark.parametrize("raw", ["0", "-3", "nope", "1.5"])
    def test_env_capacity_rejects_non_positive_values(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CACHE_SIZE", raw)
        solve_cache.reset()
        try:
            with pytest.raises(ValueError, match="REPRO_SOLVE_CACHE_SIZE"):
                solve_cache.cache()
        finally:
            monkeypatch.delenv("REPRO_SOLVE_CACHE_SIZE")
            solve_cache.reset()

    def test_partition_cached_too(self, count_partitions):
        partition(log_pattern(), n_max=8)
        partition(log_pattern(), n_max=8)
        assert count_partitions["n"] == 1
        partition(log_pattern(), n_max=8, cache=False)
        assert count_partitions["n"] == 2


class TestCacheKeys:
    def test_solve_key_translation_invariant(self):
        base = se_pattern()
        shifted = Pattern(tuple((r + 3, c + 5) for r, c in base.offsets))
        assert solve_key(base, (64, 64), 8, "latency", 0) == solve_key(
            shifted, (64, 64), 8, "latency", 0
        )

    def test_solve_key_tail_only_shape_dependence(self):
        """Overhead depends only on ``w_{n-1}`` — rows don't split entries."""
        p = log_pattern()
        assert solve_key(p, (64, 48), 8, "latency", 0) == solve_key(
            p, (640, 48), 8, "latency", 0
        )
        assert solve_key(p, (64, 48), 8, "latency", 0) != solve_key(
            p, (64, 64), 8, "latency", 0
        )

    def test_partition_key_separates_modes(self):
        p = log_pattern()
        keys = {
            partition_key(p, 8, True),
            partition_key(p, 8, False),
            partition_key(p, 4, True),
        }
        assert len(keys) == 3
        assert partition_key(p, 8, True) != solve_key(p, None, 8, "latency", 0)


class TestWarmSweeps:
    def test_warm_overhead_vs_banks_makes_no_solve_calls(self, count_solves):
        """Acceptance: the second identical sweep is answered from cache."""
        shape = (64, 48)
        banks = range(4, 9)
        cold = overhead_vs_banks(shape, banks, pattern=log_pattern())
        cold_calls = count_solves["n"]
        assert cold_calls > 0
        warm = overhead_vs_banks(shape, banks, pattern=log_pattern())
        assert count_solves["n"] == cold_calls  # zero additional _solve_impl
        assert warm == cold

    def test_warm_unroll_sweep_makes_no_partition_calls(self, count_partitions):
        cold = throughput_vs_unroll(log_pattern(), (1, 2, 4))
        cold_calls = count_partitions["n"]
        assert cold_calls > 0
        warm = throughput_vs_unroll(log_pattern(), (1, 2, 4))
        assert count_partitions["n"] == cold_calls
        assert warm == cold

    def test_cached_solution_is_equivalent_not_aliased(self):
        first = partition(log_pattern(), n_max=8)
        second = partition(log_pattern(), n_max=8)
        assert first == second
        assert dataclasses.asdict(first) == dataclasses.asdict(second)


class TestStableDigest:
    """Cross-process identity: the hex digest the serve tier keys stores by."""

    #: Pinned so a store written by one release stays addressable by the
    #: next — changing ``solve_key`` or the canonical JSON encoding is a
    #: store-format break and must show up here.
    GOLDEN_LOG = "42dc572fbbcbc02bf8d365d19f25c6a890d399fae17d71dd92e5507e841175dd"

    def test_golden_value_is_stable(self):
        key = solve_key(log_pattern(), (640, 480), 10, "latency", 0)
        assert stable_digest(key) == self.GOLDEN_LOG

    def test_digest_is_hex_sha256(self):
        digest = stable_digest(solve_key(se_pattern(), None, 8, "latency", 0))
        assert len(digest) == 64
        int(digest, 16)  # must parse as hex

    def test_translation_and_tail_invariance_carry_over(self):
        base = solve_key(log_pattern(), (640, 480), 10, "latency", 0)
        shifted = Pattern(tuple((r + 9, c + 4) for r, c in log_pattern().offsets))
        assert stable_digest(solve_key(shifted, (640, 480), 10, "latency", 0)) == (
            stable_digest(base)
        )
        # Only the innermost extent enters the key, so (64, 480) agrees too.
        assert stable_digest(solve_key(log_pattern(), (64, 480), 10, "latency", 0)) == (
            stable_digest(base)
        )

    def test_distinct_specs_get_distinct_digests(self):
        digests = {
            stable_digest(solve_key(log_pattern(), (640, 480), n, "latency", d))
            for n, d in [(10, 0), (9, 0), (10, 1), (None, 0)]
        }
        digests.add(stable_digest(solve_key(log_pattern(), None, 10, "banks", 0)))
        assert len(digests) == 5

    def test_round_trip_through_io_preserves_digest(self):
        """A pattern serialized and reloaded keys the same store entry."""
        original = se_pattern()
        reloaded = pattern_from_dict(pattern_to_dict(original))
        assert stable_digest(solve_key(original, (64, 64), 8, "latency", 0)) == (
            stable_digest(solve_key(reloaded, (64, 64), 8, "latency", 0))
        )

    def test_tuples_and_lists_digest_identically(self):
        """JSON has no tuples; the canonical encoding must not care."""
        assert stable_digest((1, (2, 3))) == stable_digest([1, [2, 3]])

    def test_non_canonical_keys_are_rejected(self):
        with pytest.raises(TypeError):
            stable_digest(object())
        with pytest.raises((TypeError, ValueError)):
            stable_digest(float("nan"))
