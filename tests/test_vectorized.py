"""Tests for the vectorized bulk address-translation path."""

import numpy as np
import pytest

from repro.core import BankMapping, partition, widen_solution
from repro.core.vectorized import (
    bulk_addresses,
    bulk_bank_of,
    bulk_offset_of,
    bulk_transform,
    element_grid,
    scatter_to_banks,
    verify_bijective_bulk,
    verify_bulk_matches_scalar,
)
from repro.errors import MappingError
from repro.patterns import log_pattern, se_pattern


def mapping_for(pattern=None, shape=(12, 14), **kwargs):
    return BankMapping(solution=partition(pattern or log_pattern(), **kwargs), shape=shape)


class TestElementGrid:
    def test_covers_array_row_major(self):
        grid = element_grid((2, 3))
        assert grid.shape == (6, 2)
        assert grid.tolist() == [[0, 0], [0, 1], [0, 2], [1, 0], [1, 1], [1, 2]]

    def test_3d(self):
        assert element_grid((2, 2, 2)).shape == (8, 3)


class TestEquivalenceWithScalar:
    def test_direct_scheme(self):
        mapping = mapping_for()
        assert verify_bulk_matches_scalar(mapping, sample=10_000)

    def test_constrained_scheme(self):
        mapping = mapping_for(shape=(10, 21), n_max=10)
        assert verify_bulk_matches_scalar(mapping, sample=10_000)

    def test_two_level_scheme(self):
        mapping = mapping_for(shape=(8, 20), n_max=10, same_size=False)
        assert verify_bulk_matches_scalar(mapping, sample=10_000)

    def test_wide_scheme(self):
        wide = widen_solution(partition(log_pattern()), 2)
        mapping = BankMapping(solution=wide, shape=(8, 20))
        assert verify_bulk_matches_scalar(mapping, sample=10_000)

    def test_3d_mapping(self):
        from repro.patterns import sobel3d_pattern

        mapping = BankMapping(
            solution=partition(sobel3d_pattern()), shape=(4, 5, 29)
        )
        assert verify_bulk_matches_scalar(mapping, sample=10_000)

    def test_banks_match_exhaustively(self):
        mapping = mapping_for(shape=(9, 13))
        grid = element_grid(mapping.shape)
        banks = bulk_bank_of(mapping, grid)
        offsets = bulk_offset_of(mapping, grid)
        for row, bank, offset in zip(grid, banks, offsets):
            assert mapping.address_of(tuple(row)) == (bank, offset)


class TestBulkVerification:
    def test_bijective_large_frame(self):
        """The vectorized check makes full-SD verification practical."""
        mapping = mapping_for(shape=(640, 480))
        assert verify_bijective_bulk(mapping)

    def test_detects_broken_mapping(self):
        from repro.core import LinearTransform, PartitionSolution, Pattern

        broken = PartitionSolution(
            pattern=Pattern([(0, 0)]),
            transform=LinearTransform(alpha=(0, 0)),
            n_banks=4,
            n_unconstrained=4,
        )
        mapping = BankMapping(solution=broken, shape=(4, 4))
        with pytest.raises(MappingError):
            verify_bijective_bulk(mapping)

    def test_shape_validation(self):
        mapping = mapping_for()
        with pytest.raises(MappingError):
            bulk_transform(mapping, np.zeros((5, 3), dtype=np.int64))


class TestScatter:
    def test_values_land_where_scalar_says(self):
        mapping = mapping_for(pattern=se_pattern(), shape=(6, 7))
        data = np.arange(42, dtype=np.int64).reshape(6, 7)
        banks = scatter_to_banks(mapping, data)
        for element in mapping.iter_elements():
            bank, offset = mapping.address_of(element)
            assert banks[bank][offset] == data[element]

    def test_bank_sizes(self):
        mapping = mapping_for(pattern=se_pattern(), shape=(6, 7))
        banks = scatter_to_banks(mapping, np.zeros((6, 7)))
        assert [len(b) for b in banks] == [
            mapping.bank_size(i) for i in range(mapping.n_banks)
        ]

    def test_shape_mismatch(self):
        mapping = mapping_for()
        with pytest.raises(MappingError):
            scatter_to_banks(mapping, np.zeros((3, 3)))

    def test_matches_banked_memory_load(self):
        """The bulk scatter and the cycle-level memory agree bit for bit."""
        from repro.hw import BankedMemory

        mapping = mapping_for(pattern=se_pattern(), shape=(6, 11))
        data = np.arange(66, dtype=np.int64).reshape(6, 11)
        bulk = scatter_to_banks(mapping, data)
        memory = BankedMemory(mapping=mapping)
        memory.load_array(data)
        for index, bank in enumerate(memory.banks):
            for offset in range(bank.size):
                stored = bank.peek(offset)
                if stored is not None:
                    assert bulk[index][offset] == stored
