"""Unit tests for the LTB baseline (Wang DAC 2013 reimplementation)."""

import pytest

from repro.baselines import (
    ltb_bank_of,
    ltb_min_banks,
    ltb_overhead_elements,
    ltb_partition,
)
from repro.core import OpCounter, partition
from repro.errors import PartitioningError
from repro.patterns import (
    EXPECTED_BANKS,
    gaussian_pattern,
    log_pattern,
    median_pattern,
)


class TestSearch:
    def test_table1_bank_counts(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            result = ltb_partition(pattern)
            assert result.solution.n_banks == EXPECTED_BANKS[name][1], name

    def test_solution_is_conflict_free(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            solution = ltb_partition(pattern).solution
            banks = [solution.bank_of(d) for d in pattern.offsets]
            assert len(set(banks)) == pattern.size, name

    def test_never_beats_ltb(self, all_benchmarks):
        """LTB searches the full vector space, so ours >= LTB always."""
        for name, pattern in all_benchmarks:
            ours = partition(pattern).n_banks
            ltb = ltb_partition(pattern).solution.n_banks
            assert ours >= ltb, name

    def test_median_gap(self):
        # LTB finds 7 banks where our constant-time alpha needs 8.
        assert ltb_partition(median_pattern()).solution.n_banks == 7
        assert partition(median_pattern()).n_banks == 8

    def test_gaussian_gap(self):
        assert ltb_partition(gaussian_pattern()).solution.n_banks == 10
        assert partition(gaussian_pattern()).n_banks == 13

    def test_nmax_exhaustion_raises(self):
        with pytest.raises(PartitioningError):
            ltb_partition(gaussian_pattern(), n_max=9)

    def test_algorithm_label(self):
        assert ltb_partition(log_pattern()).solution.algorithm == "ltb"

    def test_counts_candidates(self):
        result = ltb_partition(gaussian_pattern())
        # N = 9 fails entirely, N = 10 succeeds: two candidates tried.
        assert result.candidates_tried == 2
        assert result.vectors_tried > 81  # all of 9^2 plus some of 10^2

    def test_start_n_override(self):
        result = ltb_partition(log_pattern(), start_n=14)
        assert result.solution.n_banks == 14

    def test_bad_start_n(self):
        with pytest.raises(ValueError):
            ltb_partition(log_pattern(), start_n=0)

    def test_min_banks_wrapper(self):
        assert ltb_min_banks(log_pattern()) == 13


class TestOpAccounting:
    def test_ltb_costs_much_more_than_ours(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            ltb_ops = OpCounter()
            ltb_partition(pattern, ops=ltb_ops)
            ours_ops = OpCounter()
            partition(pattern, ops=ours_ops)
            assert ltb_ops.arithmetic > ours_ops.arithmetic, name

    def test_sobel3d_dominates(self):
        """The 3-D search blows up (paper: 4.5M ops vs 352)."""
        from repro.patterns import sobel3d_pattern

        ltb_ops = OpCounter()
        ltb_partition(sobel3d_pattern(), ops=ltb_ops)
        ours_ops = OpCounter()
        partition(sobel3d_pattern(), ops=ours_ops)
        assert ltb_ops.arithmetic > 1_000_000
        assert ours_ops.arithmetic < 5_000
        assert ltb_ops.arithmetic / ours_ops.arithmetic > 100


class TestOverheadModel:
    def test_paper_motivation_anchor(self):
        # Section 2: LTB pads 640x480 to 650x481 -> 5450 extra elements.
        assert ltb_overhead_elements((640, 480), 13) == 5450

    def test_pads_every_dimension(self):
        # Both dims divisible: zero overhead.
        assert ltb_overhead_elements((650, 481), 13) == 650 * 481 - 650 * 481
        assert ltb_overhead_elements((26, 39), 13) == 0

    def test_always_at_least_ours(self, all_benchmarks):
        from repro.core import ours_overhead_elements

        for name, pattern in all_benchmarks:
            n = partition(pattern).n_banks
            for shape in [(640, 480), (1280, 720), (33, 47)]:
                if pattern.ndim == 3:
                    shape = shape + (400,)
                assert ltb_overhead_elements(shape, n) >= ours_overhead_elements(
                    shape, n
                ), (name, shape)

    def test_3d_overhead(self):
        # 640x480x400 at N = 27: pad to 648x486x405.
        expected = 648 * 486 * 405 - 640 * 480 * 400
        assert ltb_overhead_elements((640, 480, 400), 27) == expected

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ltb_overhead_elements((640, 480), 0)
        with pytest.raises(ValueError):
            ltb_overhead_elements((), 5)


class TestBankOf:
    def test_consistent_with_solution(self):
        result = ltb_partition(log_pattern())
        solution = result.solution
        for delta in log_pattern().offsets:
            assert ltb_bank_of(
                solution.transform, solution.n_banks, delta
            ) == solution.bank_of(delta)
