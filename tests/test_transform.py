"""Unit tests for repro.core.transform (Section 4.1 / Theorem 1)."""

import pytest

from repro.core import (
    LinearTransform,
    OpCounter,
    Pattern,
    check_theorem1,
    derive_alpha,
    spread,
    transformed_values,
)
from repro.errors import DimensionMismatchError
from repro.patterns import log_pattern, sobel3d_pattern


class TestDeriveAlpha:
    def test_log_alpha_matches_paper(self):
        assert derive_alpha(log_pattern()).alpha == (5, 1)

    def test_log_extents(self):
        assert derive_alpha(log_pattern()).extents == (5, 5)

    def test_last_component_always_one(self):
        for pattern in (log_pattern(), sobel3d_pattern(), Pattern([(0, 0, 0, 0)])):
            assert derive_alpha(pattern).alpha[-1] == 1

    def test_3d_suffix_product(self):
        # 3x3x3 box: D = (3,3,3), alpha = (9, 3, 1)
        assert derive_alpha(sobel3d_pattern()).alpha == (9, 3, 1)

    def test_translation_invariant(self):
        p = log_pattern()
        assert derive_alpha(p).alpha == derive_alpha(p.translated((7, -3))).alpha

    def test_singleton_pattern(self):
        t = derive_alpha(Pattern([(4, 2)]))
        assert t.alpha == (1, 1)
        assert t.extents == (1, 1)

    def test_1d_pattern(self):
        assert derive_alpha(Pattern([(0,), (3,)])).alpha == (1,)

    def test_charges_operations(self):
        ops = OpCounter()
        derive_alpha(log_pattern(), ops)
        assert ops.counts["mul"] == 1  # n-1 = 1 suffix product step
        assert ops.counts["sub"] == 2
        assert ops.total > 0


class TestTransformedValues:
    def test_log_z_values_match_paper(self):
        # The paper works in a frame shifted by (2, 2):
        # z = {14, 18, 19, 20, 22, 23, 24, 25, 26, 28, 29, 30, 34}.
        _, z = transformed_values(log_pattern().translated((2, 2)))
        assert sorted(z) == [14, 18, 19, 20, 22, 23, 24, 25, 26, 28, 29, 30, 34]

    def test_values_follow_canonical_offset_order(self):
        pattern = Pattern([(1, 0), (0, 1)])
        transform, z = transformed_values(pattern)
        assert z == [transform.apply(d) for d in pattern.offsets]


class TestApply:
    def test_dot_product(self):
        t = LinearTransform(alpha=(5, 1))
        assert t.apply((3, 4)) == 19

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            LinearTransform(alpha=(1, 2)).apply((1, 2, 3))

    def test_bank_of(self):
        t = LinearTransform(alpha=(5, 1))
        assert t.bank_of((3, 4), 13) == 6

    def test_bank_of_rejects_nonpositive_banks(self):
        with pytest.raises(ValueError):
            LinearTransform(alpha=(1,)).bank_of((1,), 0)

    def test_apply_charges_ops(self):
        ops = OpCounter()
        LinearTransform(alpha=(5, 1)).apply((1, 2), ops)
        assert ops.counts == {"mul": 2, "add": 1}


class TestTheorem1:
    def test_holds_for_all_benchmarks(self, all_benchmarks):
        for _, pattern in all_benchmarks:
            assert check_theorem1(pattern)

    def test_violated_by_degenerate_transform(self):
        # alpha = (1, 1) maps (0, 1) and (1, 0) to the same value.
        square = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert not check_theorem1(square, LinearTransform(alpha=(1, 1)))

    def test_holds_under_translation(self):
        shifted = log_pattern().translated((100, 200))
        assert check_theorem1(shifted)


class TestSpread:
    def test_spread(self):
        assert spread([14, 34, 20]) == 20

    def test_spread_singleton(self):
        assert spread([7]) == 0

    def test_spread_empty_raises(self):
        with pytest.raises(ValueError):
            spread([])
