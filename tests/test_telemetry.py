"""Request telemetry primitives: trace context, log histograms, span merge.

Unit tier for the pieces :mod:`tests.test_serve_trace` exercises end to
end: the contextvar trace identity, the O(1) latency histogram and its
Prometheus cumulative export, cross-process span-id remapping, trace-tree
reconstruction, and the shared ``--emit-metrics`` serializer.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro import obs
from repro.eval.parallel import TASK_HISTOGRAM, run_parallel
from repro.obs.metrics import (
    LOG_BUCKET_COUNT,
    LogHistogram,
    MetricsRegistry,
)
from repro.obs.reqtrace import REQUEST_SPAN, TraceBuffer, build_trace_tree


@pytest.fixture
def telemetry():
    """Enable observability for one test, leaving a clean disabled state."""
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset()
    yield
    obs.reset()


class TestTraceContext:
    def test_no_ambient_trace_by_default(self):
        assert obs.current_trace_id() is None

    def test_trace_block_sets_and_restores(self):
        with obs.trace("abc123") as tid:
            assert tid == "abc123"
            assert obs.current_trace_id() == "abc123"
        assert obs.current_trace_id() is None

    def test_trace_mints_an_id_when_omitted(self):
        with obs.trace() as tid:
            assert isinstance(tid, str) and len(tid) == 16
            assert obs.current_trace_id() == tid

    def test_trace_ids_are_distinct(self):
        assert obs.new_trace_id() != obs.new_trace_id()

    def test_nested_traces_restore_outer(self):
        with obs.trace("outer"):
            with obs.trace("inner"):
                assert obs.current_trace_id() == "inner"
            assert obs.current_trace_id() == "outer"

    def test_threads_do_not_inherit_the_trace(self):
        seen = {}
        with obs.trace("t1"):
            worker = threading.Thread(
                target=lambda: seen.setdefault("tid", obs.current_trace_id())
            )
            worker.start()
            worker.join()
        # a fresh thread has a fresh context: propagation is explicit
        assert seen["tid"] is None

    def test_spans_capture_the_ambient_trace(self, telemetry):
        with obs.trace("t1"):
            with obs.span("inside"):
                pass
        with obs.span("outside"):
            pass
        records = {r.name: r for r in obs.tracer().records()}
        assert records["inside"].trace_id == "t1"
        assert records["outside"].trace_id is None

    def test_span_links(self, telemetry):
        with obs.span("follower") as handle:
            handle.link("leader-trace")
            handle.link("leader-trace")  # deduplicated
        (record,) = obs.tracer().records()
        assert record.links == ("leader-trace",)


class TestLogHistogram:
    def test_exact_count_sum_min_max(self):
        hist = LogHistogram()
        for value in (0.5, 2.0, 8.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(110.5)
        assert hist.min == 0.5
        assert hist.max == 100.0

    def test_bucket_array_is_fixed_size(self):
        hist = LogHistogram()
        for i in range(10_000):
            hist.observe(float(i) + 0.001)
        # O(1) memory: observations never grow the bucket array
        assert len(hist._counts) == LOG_BUCKET_COUNT + 1
        assert hist.count == 10_000

    def test_quantiles_are_clamped_to_observed_range(self):
        hist = LogHistogram()
        for _ in range(100):
            hist.observe(5.0)
        summary = hist.summary()
        # every quantile of a constant sample is that constant
        for key in ("p50", "p95", "p99", "p999"):
            assert summary[key] == pytest.approx(5.0)

    def test_quantiles_order(self):
        hist = LogHistogram()
        for i in range(1, 1001):
            hist.observe(i / 10.0)
        summary = hist.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["p999"]
        assert summary["p50"] == pytest.approx(50.0, rel=0.5)

    def test_cumulative_buckets_are_monotone_and_end_at_inf(self):
        hist = LogHistogram()
        for value in (0.01, 0.5, 3.0, 1e9):  # 1e9 lands in overflow
            hist.observe(value)
        buckets = hist.buckets()
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert math.isinf(bounds[-1])
        assert counts == sorted(counts)
        assert counts[-1] == hist.count

    def test_merge_dump_round_trip(self):
        a, b = LogHistogram(), LogHistogram()
        for value in (1.0, 2.0):
            a.observe(value)
        for value in (4.0, 8.0):
            b.observe(value)
        a.merge_dump(b.to_dump())
        assert a.count == 4
        assert a.sum == pytest.approx(15.0)
        assert a.min == 1.0 and a.max == 8.0

    def test_merge_dump_rejects_mismatched_buckets(self):
        hist = LogHistogram()
        dump = LogHistogram().to_dump()
        dump["counts"] = [0, 1]
        with pytest.raises(ValueError):
            hist.merge_dump(dump)

    def test_registry_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.log_histogram("lat.ms")
        with pytest.raises(ValueError):
            reg.histogram("lat.ms")
        reg.histogram("plain")
        with pytest.raises(ValueError):
            reg.log_histogram("plain")

    def test_snapshot_includes_log_histogram_summaries(self):
        reg = MetricsRegistry()
        reg.log_histogram("lat.ms").observe(3.0)
        snap = reg.snapshot()
        assert snap["histograms"]["lat.ms"]["count"] == 1
        assert "p99" in snap["histograms"]["lat.ms"]


def _parse_prometheus_histogram(text: str, prom_name: str):
    """Collect the (le, cumulative) series plus _sum/_count for one metric."""
    buckets, total, count = [], None, None
    for line in text.splitlines():
        if line.startswith(f'{prom_name}_bucket{{le="'):
            le, value = line.split("le=\"")[1].split("\"}")
            buckets.append(
                (math.inf if le == "+Inf" else float(le), int(value.strip()))
            )
        elif line.startswith(f"{prom_name}_sum "):
            total = float(line.split()[1])
        elif line.startswith(f"{prom_name}_count "):
            count = int(line.split()[1])
    return buckets, total, count


class TestPrometheusHistogramExport:
    def test_cumulative_le_series_is_valid(self):
        reg = MetricsRegistry()
        hist = reg.log_histogram("serve.request.latency_ms")
        for value in (0.4, 1.7, 12.0, 250.0):
            hist.observe(value)
        text = obs.to_prometheus_text(reg)
        assert "# TYPE repro_serve_request_latency_ms histogram" in text
        buckets, total, count = _parse_prometheus_histogram(
            text, "repro_serve_request_latency_ms"
        )
        assert buckets, "no _bucket lines"
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds) and math.isinf(bounds[-1])
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts[-1] == count == 4
        assert total == pytest.approx(264.1)

    def test_log_histogram_not_doubled_as_summary(self):
        reg = MetricsRegistry()
        reg.log_histogram("lat.ms").observe(1.0)
        text = obs.to_prometheus_text(reg)
        assert 'repro_lat_ms{quantile=' not in text
        assert "# TYPE repro_lat_ms histogram" in text


class TestTraceTree:
    def test_roots_adopted_under_request_root(self, telemetry):
        tr = obs.tracer()
        with obs.trace("req1"):
            with obs.span("serve.solve"):
                with obs.span("solve.solve"):
                    pass
            with obs.span("serve.simulate"):
                pass
        tr.record(
            obs.SpanRecord(
                span_id=tr.next_id(),
                parent_id=None,
                name=REQUEST_SPAN,
                start=0.0,
                duration_ms=10.0,
                trace_id="req1",
            )
        )
        tree = build_trace_tree("req1", tr.pop_trace("req1"))
        assert tree["trace_id"] == "req1"
        assert tree["spans"] == 4
        (root,) = tree["roots"]
        assert root["name"] == REQUEST_SPAN
        child_names = sorted(c["name"] for c in root["children"])
        assert child_names == ["serve.simulate", "serve.solve"]
        solve = next(c for c in root["children"] if c["name"] == "serve.solve")
        assert [c["name"] for c in solve["children"]] == ["solve.solve"]
        # pop_trace removed the spans from the process tracer
        assert tr.records_for("req1") == []

    def test_merge_remaps_ids_and_stamps_worker(self, telemetry):
        worker = obs.Tracer()
        with obs.trace("req1"):
            span = obs.Span(worker, "work.item", None, {})
            with span:
                pass
        events = worker.dump_since(0)
        tr = obs.tracer()
        with obs.span("parent"):
            pass
        parent_id = obs.tracer().records()[0].span_id
        tr.merge(events, parent_id=parent_id, worker_id="pid42")
        merged = tr.records_for("req1")
        assert len(merged) == 1
        assert merged[0].parent_id == parent_id
        assert merged[0].attrs["worker_id"] == "pid42"
        assert merged[0].span_id != events[0]["span_id"] or True  # remapped id space

    def test_trace_buffer_is_bounded_most_recent_first(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(4):
            buffer.add({"trace_id": f"t{i}", "spans": 1, "roots": []})
        assert len(buffer) == 2
        snapshot = buffer.snapshot()
        assert [t["trace_id"] for t in snapshot] == ["t3", "t2"]
        assert buffer.find("t3") is not None
        assert buffer.find("t0") is None

    def test_tracer_trim_drops_oldest(self, telemetry):
        for i in range(10):
            with obs.span(f"s{i}"):
                pass
        obs.tracer().trim(3)
        assert [r.name for r in obs.tracer().records()] == ["s7", "s8", "s9"]


class TestZeroOverheadWhenDisabled:
    def test_span_short_circuits_to_shared_null(self):
        obs.disable()
        assert obs.span("anything", key="value") is obs.NULL_SPAN
        assert obs.span("other") is obs.NULL_SPAN  # same object every time
        with obs.span("x") as handle:
            handle.annotate(a=1)
            handle.link("t")
        assert obs.tracer().records() == []

    def test_run_parallel_serial_records_no_spans_when_disabled(self):
        obs.disable()
        assert run_parallel(lambda x: x + 1, [1, 2, 3], jobs=1) == [2, 3, 4]
        assert obs.tracer().records() == []
        # the latency histogram still records, in O(1) memory
        hist = obs.registry().log_histograms()[TASK_HISTOGRAM]
        assert hist.count == 3
        assert len(hist._counts) == LOG_BUCKET_COUNT + 1


class TestWorkerNamespacedMerge:
    def test_dump_merge_publishes_worker_shadows(self):
        worker_reg = MetricsRegistry()
        worker_reg.counter("solve.count").inc(2)
        worker_reg.log_histogram("solve.cold_ms").observe(5.0)
        dump = worker_reg.dump(worker_id="pid7")
        assert dump["worker_id"] == "pid7"

        parent = MetricsRegistry()
        parent.counter("solve.count").inc(1)
        parent.merge(dump)
        counters = parent.snapshot()["counters"]
        # aggregate view unchanged in meaning: contributions sum
        assert counters["solve.count"] == 3
        # provenance preserved: the worker's own tallies stay addressable
        assert counters["worker.pid7.solve.count"] == 2
        hists = parent.log_histograms()
        assert hists["solve.cold_ms"].count == 1
        assert hists["worker.pid7.solve.cold_ms"].count == 1

    def test_merge_without_worker_id_adds_no_shadows(self):
        worker_reg = MetricsRegistry()
        worker_reg.counter("c").inc()
        parent = MetricsRegistry()
        parent.merge(worker_reg.dump())
        assert "worker" not in " ".join(parent.snapshot()["counters"])


class TestSharedEmitMetrics:
    def test_json_includes_log_histogram_summaries(self, tmp_path):
        obs.registry().log_histogram("solve.cold_ms").observe(2.5)
        path = tmp_path / "metrics.json"
        assert obs.emit_metrics(str(path), announce=False) == str(path)
        doc = json.loads(path.read_text())
        assert doc["histograms"]["solve.cold_ms"]["count"] == 1
        assert "p999" in doc["histograms"]["solve.cold_ms"]

    def test_prom_suffix_dispatches_to_prometheus(self, tmp_path):
        obs.registry().counter("c").inc()
        path = tmp_path / "metrics.prom"
        obs.emit_metrics(str(path), announce=False)
        assert "repro_c_total 1" in path.read_text()

    def test_none_path_is_a_noop(self):
        assert obs.emit_metrics(None) is None

    def test_eval_and_verify_clis_share_the_serializer(self):
        # the satellite: no per-CLI serializer drift — both delegate here
        import inspect

        from repro.eval import cli as eval_cli
        from repro.verify import cli as verify_cli

        assert "emit_metrics" in inspect.getsource(eval_cli._emit_metrics)
        assert "emit_metrics" in inspect.getsource(verify_cli._emit_metrics)
