"""Tests for the analytical tooling (bounds, gaps, op prediction)."""

import pytest

from repro.core import (
    bounding_box_bound,
    exhaustive_min_banks,
    gap_survey,
    measured_vs_predicted,
    minimize_nf,
    nf_upper_bound,
    optimality_gap,
    predict_ops_ltb,
    predict_ops_ours,
)
from repro.patterns import (
    gaussian_pattern,
    log_pattern,
    median_pattern,
    random_pattern,
    se_pattern,
)


class TestBounds:
    def test_nf_within_upper_bound(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            n_f, _, _ = minimize_nf(pattern)
            assert n_f <= nf_upper_bound(pattern), name

    def test_upper_bound_within_box_bound(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            assert nf_upper_bound(pattern) <= bounding_box_bound(pattern), name

    def test_log_bound_value(self):
        # z spread = 34 - 14 = 20 -> bound 21.
        assert nf_upper_bound(log_pattern()) == 21

    def test_dense_window_bound_tight(self):
        from repro.patterns import canny_pattern

        # 5x5 dense: z = 0..24, bound = max(25, 25) = 25, and N_f = 25.
        assert nf_upper_bound(canny_pattern()) == 25


class TestOptimalityGap:
    def test_known_gaps(self):
        assert optimality_gap(log_pattern()) == 0
        assert optimality_gap(se_pattern()) == 0
        assert optimality_gap(median_pattern()) == 1
        assert optimality_gap(gaussian_pattern()) == 3

    def test_exhaustive_matches_ltb_column(self):
        assert exhaustive_min_banks(median_pattern()) == 7
        assert exhaustive_min_banks(gaussian_pattern()) == 10

    def test_gap_never_negative(self):
        for seed in range(8):
            pattern = random_pattern(6, (5, 5), seed=seed)
            assert optimality_gap(pattern) >= 0


class TestGapSurvey:
    def test_survey_shape(self):
        survey = gap_survey(count=12, size=6, seed=7)
        assert len(survey.gaps) == 12
        assert sum(survey.histogram.values()) == 12
        assert 0.0 <= survey.optimal_fraction <= 1.0
        assert survey.mean_gap >= 0
        assert survey.max_gap == max(survey.gaps)

    def test_deterministic(self):
        a = gap_survey(count=8, size=6, seed=1)
        b = gap_survey(count=8, size=6, seed=1)
        assert a.gaps == b.gaps

    def test_validation(self):
        with pytest.raises(ValueError):
            gap_survey(count=0)


class TestOpPrediction:
    def test_prediction_tracks_measurement(self, all_benchmarks):
        """The closed-form O(m^2) model lands within 35% of the
        instrumented count on every benchmark — the complexity claim is
        auditable, not hand-waved."""
        for name, pattern in all_benchmarks:
            measured, predicted = measured_vs_predicted(pattern)
            assert predicted <= measured <= predicted * 1.35, (
                name,
                measured,
                predicted,
            )

    def test_ltb_prediction_order(self):
        from repro.baselines import ltb_partition
        from repro.core import OpCounter

        ops = OpCounter()
        result = ltb_partition(log_pattern(), ops=ops)
        predicted = predict_ops_ltb(log_pattern(), result.vectors_tried)
        assert predicted / 2 <= ops.arithmetic <= predicted * 2

    def test_quadratic_growth(self):
        small = predict_ops_ours(se_pattern())        # m = 5
        large = predict_ops_ours(log_pattern())       # m = 13
        # pairwise term dominates: ~ (13/5)^2 ≈ 6.8x
        assert 3 < large / small < 10
