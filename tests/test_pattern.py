"""Unit tests for repro.core.pattern."""

import pytest

from repro.core import Pattern
from repro.errors import DimensionMismatchError, PatternError


class TestConstruction:
    def test_basic(self):
        p = Pattern([(0, 0), (1, 2)])
        assert p.size == 2
        assert p.ndim == 2

    def test_offsets_sorted_canonically(self):
        p = Pattern([(1, 0), (0, 0), (0, 1)])
        assert p.offsets == ((0, 0), (0, 1), (1, 0))

    def test_equality_order_independent(self):
        assert Pattern([(0, 1), (1, 0)]) == Pattern([(1, 0), (0, 1)])

    def test_hashable(self):
        assert len({Pattern([(0,)]), Pattern([(0,)])}) == 1

    def test_name_not_part_of_equality(self):
        assert Pattern([(0, 0)], name="a") == Pattern([(0, 0)], name="b")

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            Pattern([])

    def test_rejects_duplicates(self):
        with pytest.raises(PatternError, match="duplicate"):
            Pattern([(0, 0), (0, 0)])

    def test_rejects_ragged(self):
        with pytest.raises(PatternError, match="ragged"):
            Pattern([(0, 0), (1,)])

    def test_rejects_zero_dimensional(self):
        with pytest.raises(PatternError):
            Pattern([()])

    def test_rejects_non_integer(self):
        with pytest.raises(PatternError):
            Pattern([("x", "y")])

    def test_coerces_integer_like(self):
        p = Pattern([[0, 1], [1, 0]])
        assert p.offsets == ((0, 1), (1, 0))

    def test_negative_offsets_allowed(self):
        p = Pattern([(-1, 0), (1, 0)])
        assert p.mins == (-1, 0)


class TestGeometry:
    def test_extents(self):
        p = Pattern([(0, 0), (2, 3)])
        assert p.extents == (3, 4)

    def test_extents_singleton(self):
        assert Pattern([(5, 7)]).extents == (1, 1)

    def test_bounding_box_volume(self):
        assert Pattern([(0, 0), (2, 3)]).bounding_box_volume == 12

    def test_mins_maxs(self):
        p = Pattern([(-1, 2), (3, -4)])
        assert p.mins == (-1, -4)
        assert p.maxs == (3, 2)


class TestDerived:
    def test_normalized_moves_to_origin(self):
        p = Pattern([(2, 3), (4, 5)]).normalized()
        assert p.mins == (0, 0)
        assert p.offsets == ((0, 0), (2, 2))

    def test_normalized_idempotent(self):
        p = Pattern([(1, 1), (2, 2)])
        assert p.normalized() == p.normalized().normalized()

    def test_translated(self):
        p = Pattern([(0, 0)]).translated((3, -2))
        assert p.offsets == ((3, -2),)

    def test_translated_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Pattern([(0, 0)]).translated((1,))

    def test_union(self):
        a = Pattern([(0, 0), (0, 1)])
        b = Pattern([(0, 1), (1, 1)])
        assert a.union(b).size == 3

    def test_union_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Pattern([(0, 0)]).union(Pattern([(0,)]))

    def test_embed_default_last_axis(self):
        p = Pattern([(1, 2)]).embed(extra_axis_value=7)
        assert p.offsets == ((1, 2, 7),)

    def test_embed_front_axis(self):
        p = Pattern([(1, 2)]).embed(extra_axis_value=7, axis=0)
        assert p.offsets == ((7, 1, 2),)

    def test_embed_bad_axis(self):
        with pytest.raises(DimensionMismatchError):
            Pattern([(1, 2)]).embed(axis=5)

    def test_with_name(self):
        assert Pattern([(0,)]).with_name("x").name == "x"


class TestMask:
    def test_to_mask_roundtrip(self):
        mask = [[1, 0, 1], [0, 1, 0]]
        p = Pattern.from_mask(mask)
        assert p.to_mask() == mask

    def test_from_kernel_skips_zeros(self):
        p = Pattern.from_kernel([[0, 5], [-3, 0]])
        assert p.offsets == ((0, 1), (1, 0))

    def test_from_mask_empty_raises(self):
        with pytest.raises(PatternError):
            Pattern.from_mask([[0, 0]])

    def test_to_mask_requires_2d(self):
        with pytest.raises(PatternError):
            Pattern([(0, 0, 0)]).to_mask()

    def test_to_mask_normalizes(self):
        p = Pattern([(5, 5), (5, 6)])
        assert p.to_mask() == [[1, 1]]


class TestDunder:
    def test_len_and_iter(self):
        p = Pattern([(0, 0), (1, 1)])
        assert len(p) == 2
        assert list(p) == [(0, 0), (1, 1)]

    def test_contains(self):
        p = Pattern([(0, 1)])
        assert p.contains((0, 1))
        assert not p.contains((1, 0))

    def test_repr_mentions_size(self):
        assert "2 offsets" in repr(Pattern([(0, 0), (1, 1)]))

    def test_eq_other_type(self):
        assert Pattern([(0,)]) != 42
