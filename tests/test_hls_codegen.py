"""Unit tests for the banked-kernel code generator.

Beyond structural checks, the generated C address expressions are evaluated
(as Python, which agrees with C on non-negative integer arithmetic) and
compared against the BankMapping they were generated from — so the emitted
code is semantically verified, not just eyeballed.
"""

import re

import pytest

from repro.core import BankMapping, partition
from repro.errors import HLSError
from repro.hls import (
    generate_bank_decls,
    generate_bank_helpers,
    generate_kernel,
    generate_read_dispatch,
    log_kernel_nest,
    parse_kernel,
    partition_pragma,
)
from repro.patterns import log_pattern, se_pattern


def mapping_for(pattern, shape=(12, 14), **kwargs):
    return BankMapping(solution=partition(pattern, **kwargs), shape=shape)


def extract_function(code: str, name: str) -> str:
    """Pull one generated helper's body expression(s) out of the C text."""
    match = re.search(rf"int {name}\(([^)]*)\) \{{(.*?)\n\}}", code, re.S)
    assert match, f"function {name} not found in generated code"
    return match.group(2)


def run_helper(code: str, name: str, x0: int, x1: int) -> int:
    """Interpret the generated helper on concrete coordinates."""
    body = extract_function(code, name)
    namespace = {"x0": x0, "x1": x1}
    result = None
    for line in body.strip().splitlines():
        line = line.strip().rstrip(";")
        if line.startswith("return "):
            result = eval(  # noqa: S307 - test-only, generated input
                line[len("return ") :].replace("/", "//"), {}, namespace
            )
        elif line.startswith("int "):
            var, expr = line[len("int ") :].split("=", 1)
            namespace[var.strip()] = eval(  # noqa: S307
                expr.replace("/", "//"), {}, namespace
            )
    assert result is not None
    return result


class TestHelpers:
    def test_bank_helper_matches_mapping(self):
        mapping = mapping_for(log_pattern())
        code = generate_bank_helpers("X", mapping)
        for element in [(0, 0), (3, 7), (11, 13)]:
            assert run_helper(code, "X_bank", *element) == mapping.bank_of(element)

    def test_offset_helper_matches_mapping(self):
        mapping = mapping_for(log_pattern())
        code = generate_bank_helpers("X", mapping)
        for element in [(0, 0), (3, 7), (11, 13), (5, 12)]:
            assert run_helper(code, "X_offset", *element) == mapping.offset_of(element)

    def test_two_level_helpers_match(self):
        mapping = mapping_for(log_pattern(), shape=(8, 20), n_max=10, same_size=False)
        code = generate_bank_helpers("X", mapping)
        for element in [(0, 0), (2, 19), (7, 13)]:
            assert run_helper(code, "X_bank", *element) == mapping.bank_of(element)
            assert run_helper(code, "X_offset", *element) == mapping.offset_of(element)

    def test_helpers_cover_whole_array(self):
        mapping = mapping_for(se_pattern(), shape=(6, 7))
        code = generate_bank_helpers("X", mapping)
        for element in mapping.iter_elements():
            assert run_helper(code, "X_bank", *element) == mapping.bank_of(element)
            assert run_helper(code, "X_offset", *element) == mapping.offset_of(element)


class TestStructure:
    def test_decls_one_per_bank(self):
        mapping = mapping_for(log_pattern())
        decls = generate_bank_decls("X", mapping)
        assert decls.count("short X_bank") == 13

    def test_dispatch_has_all_cases(self):
        mapping = mapping_for(se_pattern())
        dispatch = generate_read_dispatch("X", mapping)
        for b in range(5):
            assert f"case {b}:" in dispatch

    def test_full_kernel_contains_loops_and_body(self):
        mapping = mapping_for(log_pattern(), shape=(640, 480))
        code = generate_kernel(log_kernel_nest(), {"X": mapping})
        assert "for (int i = 2; i <= 637" in code
        assert "X_read(i-2, j)" in code
        assert "Y[i][j] =" in code

    def test_missing_mapping_rejected(self):
        with pytest.raises(HLSError, match="no bank mapping"):
            generate_kernel(log_kernel_nest(), {})

    def test_1d_kernel(self):
        from repro.hls import extract_pattern

        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i] + X[i+1];")
        mapping = BankMapping(solution=partition(extract_pattern(nest)), shape=(8,))
        code = generate_kernel(nest, {"X": mapping})
        assert "X_read(i)" in code and "X_read(i+1)" in code

    def test_pragma(self):
        mapping = mapping_for(log_pattern())
        pragma = partition_pragma("X", mapping)
        assert "banks=13" in pragma
        assert "alpha=5,1" in pragma
