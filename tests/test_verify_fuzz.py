"""The fuzz tier: hundreds of randomized differential cases per run.

Excluded from tier 1 by the ``addopts`` default (``-m "not fuzz"``);
selected explicitly in CI's ``verify-fuzz`` job and nightly schedule with
``pytest -m fuzz``.  The seed comes from ``REPRO_FUZZ_SEED`` so scheduled
runs explore fresh cases while any failure log names the exact seed to
replay locally.
"""

from __future__ import annotations

import os

import pytest

from repro.verify import run_suite

pytestmark = pytest.mark.fuzz

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
CASES = int(os.environ.get("REPRO_FUZZ_CASES", "150"))


def _diagnose(report):
    lines = [f"seed={SEED}: {len(report.failing_records)} failing case(s)"]
    for record in report.failing_records:
        lines.append(f"  case {record['case']}")
        for failure in record["failures"]:
            lines.append(f"    {failure['oracle']}: {failure['message']}")
    lines.append(f"replay: repro-verify --replay <corpus> or --seed {SEED}")
    return "\n".join(lines)


class TestFuzzTier:
    def test_seeded_sweep_is_clean(self):
        report = run_suite(CASES, SEED)
        assert report.ok, _diagnose(report)

    def test_adjacent_seed_sweep_is_clean(self):
        # A second seed guards against a single lucky suite: two disjoint
        # case sets both passing is a much stronger draw.
        report = run_suite(CASES // 2, SEED + 1)
        assert report.ok, _diagnose(report)
