"""Coverage for remaining corners: report rendering, platforms, sampling."""

import numpy as np
import pytest

from repro.core import BankMapping, LinearTransform, partition
from repro.eval import build_row, render_table1
from repro.eval.table1 import Table1
from repro.hw import DE2_115, Platform, ResourceEstimate
from repro.hw.bram import BlockRAM
from repro.patterns import log_pattern, se_pattern


class TestReportRendering:
    def test_without_paper_rows(self):
        row = build_row("se", time_repetitions=1)
        text = render_table1(Table1(rows=(row,)), include_paper=False)
        assert "paper 31.1%" in text  # footer always cites the target
        assert "\n          |  paper" not in text  # no inline paper rows

    def test_improvement_row_present(self):
        row = build_row("se", time_repetitions=1)
        text = render_table1(Table1(rows=(row,)))
        assert "impr%" in text


class TestPlatformEdge:
    def test_zero_capacity_platform(self):
        empty = Platform(
            name="null", block=BlockRAM(), total_blocks=0, total_luts=0,
            total_multipliers=0,
        )
        estimate = ResourceEstimate(
            memory_blocks=0, mux_luts=0, addr_luts=0, multipliers=0
        )
        util = empty.utilization(estimate)
        assert util == {"blocks": 0.0, "luts": 0.0, "multipliers": 0.0}
        assert empty.fits(estimate)

    def test_negative_capacity_rejected(self):
        from repro.errors import HardwareModelError

        with pytest.raises(HardwareModelError):
            Platform(
                name="bad", block=BlockRAM(), total_blocks=-1, total_luts=0,
                total_multipliers=0,
            )

    def test_de2_name(self):
        assert "DE2-115" in DE2_115.name


class TestSampledVerification:
    def test_sampled_path_covers_tail(self):
        """The stride sampler must include the padded tail slices."""
        mapping = BankMapping(solution=partition(log_pattern()), shape=(40, 53))
        sampled = list(mapping._sampled_elements(500))
        tail_values = {e[-1] for e in sampled}
        # last 2N slices of the final dimension must be present
        assert 52 in tail_values and 52 - 25 in tail_values

    def test_sampled_verify_on_wide_shape(self):
        mapping = BankMapping(solution=partition(log_pattern()), shape=(100, 105))
        assert mapping.verify_bijective(sample_limit=2000)


class TestTransformDefaults:
    def test_extents_default_empty(self):
        t = LinearTransform(alpha=(5, 1))
        assert t.extents == ()
        assert t.ndim == 2

    def test_transform_repr(self):
        assert "alpha=(5, 1)" in repr(LinearTransform(alpha=(5, 1)))


class TestSolutionReprAndProps:
    def test_repr(self):
        solution = partition(se_pattern())
        text = repr(solution)
        assert "N=5" in text and "ours" in text

    def test_two_level_bank_indices_offset(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        at_origin = sorted(solution.bank_indices())
        shifted = sorted(solution.bank_indices((3, 5)))
        # the conflict profile (sorted multiset of per-bank loads) matches
        def loads(banks):
            return sorted(banks.count(b) for b in set(banks))

        assert loads(at_origin) == loads(shifted)


class TestBankedMemoryMisc:
    def test_repr_free_of_data(self):
        from repro.hw import BankedMemory

        mapping = BankMapping(solution=partition(se_pattern()), shape=(6, 7))
        memory = BankedMemory(mapping=mapping)
        memory.load_array(np.zeros((6, 7), dtype=np.int64))
        assert "_data" not in repr(memory.banks[0])
