"""Tests for the ``repro-bench-check`` perf-regression gate.

The comparison logic is covered with synthetic documents (fast, exact),
and the CLI end to end against a real micro-preset suite run — including
the acceptance case: an injected 3x slowdown exits nonzero while a clean
back-to-back run passes.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.bench.check import (
    SUITE_MODULE_KEY,
    compare_documents,
    load_suite,
    main_bench_check,
)


def _doc():
    """A minimal suite document touching every gated section."""
    return {
        "preset": "micro",
        "simulate": [{"workload": "w", "scalar_s": 0.1, "vectorized_s": 0.05}],
        "solve": [{"workload": "w", "cold_s": 0.2, "warm_s": 0.01}],
        "sweep": [{"workload": "w", "scalar_s": 0.3, "vectorized_s": 0.1}],
        "ltb_search": [{"workload": "w", "scalar_s": 0.05, "vectorized_s": 0.02}],
        "baseline_sim": [{"workload": "w", "scalar_s": 0.4, "vectorized_s": 0.15}],
        "serve": [{"workload": "solve_burst", "p50_ms": 40.0, "rps": 200.0}],
    }


class TestCompareDocuments:
    def test_identical_runs_pass_every_check(self):
        report = compare_documents(_doc(), _doc())
        assert report["ok"]
        assert report["regressions"] == 0
        # 2 metrics x 5 timing sections + serve p50 + serve rps
        assert report["checked"] == 12

    def test_three_x_slowdown_regresses(self):
        candidate = _doc()
        candidate["simulate"][0]["scalar_s"] = 0.31  # 3.1x, past 2.5x slack
        report = compare_documents(_doc(), candidate, slack=2.5)
        assert not report["ok"]
        bad = [c for c in report["checks"] if c["regression"]]
        assert len(bad) == 1
        assert bad[0]["section"] == "simulate"
        assert bad[0]["metric"] == "scalar_s"
        assert "rose" in bad[0]["reason"]

    def test_sub_floor_delta_never_regresses(self):
        baseline, candidate = _doc(), _doc()
        baseline["simulate"][0]["scalar_s"] = 0.001
        candidate["simulate"][0]["scalar_s"] = 0.004  # 4x, but delta 3ms < 5ms
        assert compare_documents(baseline, candidate)["ok"]

    def test_throughput_gates_in_the_opposite_direction(self):
        candidate = _doc()
        candidate["serve"][0]["rps"] = 60.0  # below 200/2.5, delta over floor
        report = compare_documents(_doc(), candidate)
        bad = [c for c in report["checks"] if c["regression"]]
        assert [c["metric"] for c in bad] == ["rps"]
        assert "fell" in bad[0]["reason"]
        # a throughput *gain* is never a regression
        candidate["serve"][0]["rps"] = 900.0
        assert compare_documents(_doc(), candidate)["ok"]

    def test_missing_workload_is_a_regression(self):
        candidate = _doc()
        candidate["solve"] = []
        report = compare_documents(_doc(), candidate)
        bad = [c for c in report["checks"] if c["regression"]]
        assert {c["metric"] for c in bad} == {"cold_s", "warm_s"}
        assert all("missing" in c["reason"] for c in bad)
        assert all(c["candidate"] is None for c in bad)

    def test_missing_metric_is_a_regression(self):
        candidate = _doc()
        del candidate["serve"][0]["p50_ms"]
        report = compare_documents(_doc(), candidate)
        bad = [c for c in report["checks"] if c["regression"]]
        assert [c["metric"] for c in bad] == ["p50_ms"]

    def test_slack_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare_documents(_doc(), _doc(), slack=1.0)

    def test_wider_slack_forgives_a_borderline_regression(self):
        candidate = _doc()
        candidate["simulate"][0]["scalar_s"] = 0.31
        assert not compare_documents(_doc(), candidate, slack=2.5)["ok"]
        assert compare_documents(_doc(), candidate, slack=4.0)["ok"]


class TestBenchCheckCli:
    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main_bench_check(["--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        rc = main_bench_check(["--baseline", str(path)])
        assert rc == 2
        assert "unreadable" in capsys.readouterr().err

    def test_bad_runs_exits_two(self, tmp_path):
        assert main_bench_check(["--runs", "0"]) == 2

    @pytest.mark.slow
    def test_end_to_end_gate_detects_injected_slowdown(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "BENCH_baseline.json"

        # 1. Baseline a fresh micro run.
        rc = main_bench_check(
            [
                "--update-baseline",
                "--preset",
                "micro",
                "--baseline",
                str(baseline),
                "--repeat",
                "1",
            ]
        )
        assert rc == 0
        doc = json.loads(baseline.read_text())
        assert doc["preset"] == "micro"

        # 2. A clean back-to-back run passes (slack absorbs the jitter).
        report_path = tmp_path / "clean.json"
        rc = main_bench_check(
            [
                "--baseline",
                str(baseline),
                "--quick",
                "--slack",
                "6",
                "--report",
                str(report_path),
            ]
        )
        assert rc == 0, capsys.readouterr().out
        clean = json.loads(report_path.read_text())
        assert clean["ok"] and clean["preset"] == "micro"
        assert clean["checked"] > 0

        # 3. Inject a 3x slowdown (plus a constant beating every floor)
        #    into the suite's timing primitive: the gate must exit 1.
        suite = sys.modules[SUITE_MODULE_KEY]
        real_best_of = suite._best_of
        monkeypatch.setattr(
            suite,
            "_best_of",
            lambda fn, repeat: real_best_of(fn, repeat) * 3.0 + 0.05,
        )
        report_path = tmp_path / "slow.json"
        rc = main_bench_check(
            [
                "--baseline",
                str(baseline),
                "--quick",
                "--report",
                str(report_path),
            ]
        )
        assert rc == 1
        slow = json.loads(report_path.read_text())
        assert not slow["ok"] and slow["regressions"] > 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_load_suite_caches_under_the_stable_key(self):
        first = load_suite()
        assert sys.modules[SUITE_MODULE_KEY] is first
        assert load_suite() is first

    @pytest.mark.slow
    def test_median_of_k_merges_gate_metrics(self, monkeypatch):
        from repro.bench.check import run_candidate

        suite = load_suite()
        values = iter([0.1, 0.9, 0.2] * 40)  # per-call timings across runs
        monkeypatch.setattr(suite, "_best_of", lambda fn, repeat: next(values))
        merged = run_candidate("micro", repeat=1, runs=3)
        assert merged["median_of"] == 3
        # every gated timing is a median of its three runs, hence one of
        # the injected values rather than an impossible average
        assert merged["simulate"][0]["scalar_s"] in {0.1, 0.2, 0.9}
