"""Tests for the sweep-series generators and the CLI entry points."""

import pytest

from repro.eval.cli import main_casestudy, main_partition, main_table1
from repro.eval.sweeps import (
    bandwidth_vs_ports,
    energy_vs_scheme,
    overhead_vs_banks,
    overhead_vs_resolution,
    throughput_vs_unroll,
)
from repro.patterns import log_pattern, se_pattern


class TestOverheadSweeps:
    def test_vs_banks_ours_never_worse(self):
        series = overhead_vs_banks((640, 480), range(2, 30))
        for point in series:
            assert point.ours_elements <= point.ltb_elements

    def test_vs_banks_zero_at_divisors(self):
        series = overhead_vs_banks((640, 480), [8, 12, 16])
        assert all(p.ours_elements == 0 for p in series)

    def test_vs_resolution_rows(self):
        rows = overhead_vs_resolution(log_pattern(), 13)
        assert len(rows) == 5
        names = [r[0] for r in rows]
        assert "SD" in names and "4K" in names
        for _, ours, ltb in rows:
            assert ours <= ltb


class TestThroughputSweep:
    def test_unroll_scales_throughput(self):
        rows = throughput_vs_unroll(log_pattern(), [1, 2, 4])
        throughputs = [r[3] for r in rows]
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > throughputs[0] * 3

    def test_bank_cap_flattens_throughput(self):
        capped = throughput_vs_unroll(log_pattern(), [1, 2, 4], n_max=13)
        uncapped = throughput_vs_unroll(log_pattern(), [1, 2, 4])
        assert capped[-1][3] < uncapped[-1][3]
        assert all(banks <= 13 for _, banks, _, _ in capped)


class TestEnergySweep:
    def test_banked_wins(self):
        rows = energy_vs_scheme(log_pattern(), (64, 65), iterations=500)
        totals = {name: total for name, _, _, total in rows}
        assert totals["banked"] < totals["multiport"]
        assert totals["banked"] < totals["duplicate"]


class TestBandwidthSweep:
    def test_fold_series(self):
        rows = bandwidth_vs_ports(log_pattern(), [1, 2, 3, 4])
        assert rows[0] == (1, 13, 1)
        assert rows[1] == (2, 7, 2)
        assert rows[3] == (4, 4, 4)


class TestCLI:
    def test_casestudy_runs(self, capsys):
        assert main_casestudy([]) == 0
        out = capsys.readouterr().out
        assert "(5, 1)" in out

    def test_table1_subset(self, capsys):
        assert main_table1(["--benchmarks", "se", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "se" in out and "impr%" in out

    def test_partition_benchmark(self, capsys):
        assert main_partition(["--benchmark", "log", "--nmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "banks = 7" in out

    def test_partition_mask_with_grid(self, capsys):
        assert main_partition(["--mask", "010,111,010", "--grid"]) == 0
        out = capsys.readouterr().out
        assert "banks = 5" in out

    def test_partition_kernel_file(self, tmp_path, capsys):
        kernel = tmp_path / "kernel.c"
        kernel.write_text(
            "for (i = 1; i <= 6; i++) Y[i] = X[i-1] + X[i] + X[i+1];"
        )
        assert main_partition(["--kernel", str(kernel)]) == 0
        out = capsys.readouterr().out
        assert "banks = 3" in out

    def test_partition_emit_c(self, capsys):
        assert main_partition(
            ["--benchmark", "se", "--shape", "32,32", "--emit-c"]
        ) == 0
        out = capsys.readouterr().out
        assert "static inline int X_bank" in out

    def test_partition_save(self, tmp_path, capsys):
        from repro.io import load_solution

        path = tmp_path / "sol.json"
        assert main_partition(["--benchmark", "se", "--save", str(path)]) == 0
        assert load_solution(path).n_banks == 5

    def test_partition_requires_source(self):
        with pytest.raises(SystemExit):
            main_partition([])

    def test_partition_emit_c_requires_shape(self):
        with pytest.raises(SystemExit):
            main_partition(["--benchmark", "se", "--emit-c"])
