"""Round-trip fuzzing of the mini-C front-end.

Random stencil kernels are *printed* to mini-C source, parsed back, and
the extracted pattern compared to the generating offsets — so the parser,
the IR, and the extractor are checked against each other on inputs no one
hand-wrote.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pattern
from repro.hls import extract_pattern, parse_kernel


@st.composite
def stencil_cases(draw):
    """A random 2-D stencil: offsets plus loop bounds that admit them."""
    coordinate = st.integers(min_value=-3, max_value=3)
    offsets = draw(
        st.sets(st.tuples(coordinate, coordinate), min_size=1, max_size=8)
    )
    pattern = Pattern(offsets)
    lo = pattern.mins
    hi = pattern.maxs
    # Loop bounds keeping every access inside a 16x16 array.
    i_lo, i_hi = -lo[0], 15 - hi[0]
    j_lo, j_hi = -lo[1], 15 - hi[1]
    return pattern, (i_lo, i_hi, j_lo, j_hi)


def render_source(pattern: Pattern, bounds) -> str:
    """Print a kernel whose reads realize exactly ``pattern``."""
    i_lo, i_hi, j_lo, j_hi = bounds

    def index(var: str, constant: int) -> str:
        if constant == 0:
            return var
        return f"{var}+{constant}" if constant > 0 else f"{var}{constant}"

    reads = " + ".join(
        f"X[{index('i', di)}][{index('j', dj)}]" for (di, dj) in pattern.offsets
    )
    return (
        "array X[16][16];\n"
        f"for (i = {i_lo}; i <= {i_hi}; i++)\n"
        f"  for (j = {j_lo}; j <= {j_hi}; j++)\n"
        f"    Y[i][j] = {reads};"
    )


@given(stencil_cases())
@settings(max_examples=120, deadline=None)
def test_print_parse_extract_roundtrip(case):
    pattern, bounds = case
    source = render_source(pattern, bounds)
    nest = parse_kernel(source)
    extracted = extract_pattern(nest)
    assert extracted == pattern


@given(stencil_cases())
@settings(max_examples=60, deadline=None)
def test_roundtripped_nest_evaluates_in_bounds(case):
    pattern, bounds = case
    nest = parse_kernel(render_source(pattern, bounds))
    i_loop, j_loop = nest.loops
    corners = [
        {"i": i_loop.lower, "j": j_loop.lower},
        {"i": i_loop.upper, "j": j_loop.upper},
    ]
    for bindings in corners:
        for ref in nest.statement.reads:
            r, c = ref.evaluate(bindings)
            assert 0 <= r < 16 and 0 <= c < 16
