"""The suite runner and ``repro-verify`` CLI: corpora, replay, metrics."""

from __future__ import annotations

import json

import pytest

from repro.obs import registry
from repro.verify import generate_case, replay_paths, run_suite
from repro.verify.cli import main_verify
from repro.verify.runner import (
    CASE_FORMAT,
    COUNTEREXAMPLE_FORMAT,
    outcome_to_record,
    record_to_outcome,
)
from repro.verify.oracles import run_oracles


class TestRunSuite:
    def test_clean_suite_reports_ok(self):
        report = run_suite(24, 0)
        assert report.cases == 24
        assert report.ok
        assert report.failures == 0
        assert report.elapsed_s > 0

    def test_metrics_counters_advance(self):
        cases = registry().counter("verify.cases")
        before = cases.value
        run_suite(12, 3)
        assert cases.value - before == 12

    def test_corpus_written_and_replayable(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        report = run_suite(16, 5, corpus_path=corpus)
        assert report.corpus_path == str(corpus)
        lines = [json.loads(l) for l in corpus.read_text().splitlines()]
        assert len(lines) == 16
        assert all(l["format"] == CASE_FORMAT for l in lines)
        replay = replay_paths([corpus])
        assert replay.cases == 16
        assert replay.records == report.records

    def test_jobs_do_not_change_results(self, tmp_path):
        serial = run_suite(20, 9, jobs=None, corpus_path=tmp_path / "a.jsonl")
        parallel = run_suite(20, 9, jobs=2, corpus_path=tmp_path / "b.jsonl")
        assert serial.records == parallel.records
        assert (tmp_path / "a.jsonl").read_text() == (tmp_path / "b.jsonl").read_text()

    def test_start_offsets_the_suite(self):
        report = run_suite(5, 2, start=10)
        indices = [r["case"]["index"] for r in report.records]
        assert indices == list(range(10, 15))

    def test_record_round_trip(self):
        outcome = run_oracles(generate_case(0, 3))
        assert record_to_outcome(outcome_to_record(outcome)) == outcome


class TestReplayInputs:
    def test_replays_bare_spec_lines(self, tmp_path):
        path = tmp_path / "specs.jsonl"
        specs = [generate_case(1, i).to_dict() for i in range(4)]
        path.write_text("".join(json.dumps(s) + "\n" for s in specs))
        report = replay_paths([path])
        assert report.cases == 4
        assert report.ok

    def test_replays_counterexample_artifact(self, tmp_path):
        artifact = {
            "format": COUNTEREXAMPLE_FORMAT,
            "original": generate_case(1, 0).to_dict(),
            "shrunk": generate_case(1, 1).to_dict(),
            "failure": {"oracle": "delta_claim", "message": "stale"},
            "evaluations": 3,
        }
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(artifact, indent=2))
        report = replay_paths([path])
        # Replay targets the *shrunk* spec — that is the regression case.
        assert report.cases == 1
        assert report.records[0]["case"] == artifact["shrunk"]

    def test_unrecognized_record_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"what": "ever"}\n')
        with pytest.raises(ValueError, match="unrecognized record"):
            replay_paths([path])

    def test_unknown_oracle_name_is_a_loud_error(self, tmp_path):
        """Growing the oracle catalog must never silently orphan old
        corpus entries — a record naming an oracle this build doesn't know
        is a corpus/catalog skew and replay refuses to paper over it."""
        record = {
            "format": CASE_FORMAT,
            "case": generate_case(1, 0).to_dict(),
            "status": "ok",
            "checked": ["mapping", "oracle_from_the_future"],
            "failures": [],
        }
        path = tmp_path / "skew.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="oracle_from_the_future"):
            replay_paths([path])

    def test_unknown_oracle_in_counterexample_is_a_loud_error(self, tmp_path):
        artifact = {
            "format": COUNTEREXAMPLE_FORMAT,
            "original": generate_case(1, 0).to_dict(),
            "shrunk": generate_case(1, 1).to_dict(),
            "failure": {"oracle": "renamed_oracle", "message": "stale"},
            "evaluations": 3,
        }
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(artifact, indent=2))
        with pytest.raises(ValueError, match="renamed_oracle"):
            replay_paths([path])


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main_verify(["--cases", "20", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "20 case(s), 0 failing" in out

    def test_corpus_and_replay_flags(self, tmp_path, capsys):
        corpus = tmp_path / "c.jsonl"
        assert main_verify(["--cases", "10", "--corpus", str(corpus)]) == 0
        assert main_verify(["--replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "10 case(s), 0 failing" in out

    def test_failing_run_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        import importlib

        partition_mod = importlib.import_module("repro.core.partition")
        real = partition_mod.fast_nc

        def buggy(n_f, n_max, ops=None):
            n_c, rounds = real(n_f, n_max, ops=ops)
            return (max(1, n_c - 1), rounds)

        monkeypatch.setattr(partition_mod, "fast_nc", buggy)
        code = main_verify(
            [
                "--cases", "100", "--seed", "0",
                "--counterexamples", str(tmp_path / "out"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL seed=0" in out
        assert "shrunk counterexample:" in out
        artifacts = list((tmp_path / "out").glob("counterexample-*.json"))
        assert artifacts
        payload = json.loads(artifacts[0].read_text())
        assert payload["format"] == COUNTEREXAMPLE_FORMAT

    def test_emit_metrics(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main_verify(
            ["--cases", "8", "--emit-metrics", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        text = json.dumps(payload)
        assert "verify.cases" in text
