"""Integration tests: full flows crossing every subsystem boundary.

Each test exercises a realistic end-to-end path a user would follow:
source kernel → pattern extraction → partitioning → mapping → hardware
model → simulation → (codegen / evaluation), asserting consistency between
the analytic claims and the measured behaviour at every joint.
"""

import numpy as np
import pytest

from repro.baselines import ltb_overhead_elements, ltb_partition
from repro.core import (
    BankMapping,
    Objective,
    partition,
    solve,
    verify_conflict_free,
)
from repro.hls import (
    extract_pattern,
    generate_kernel,
    log_kernel_nest,
    parse_kernel,
    schedule_nest,
)
from repro.hw import BankedMemory, estimate_resources, overhead_blocks
from repro.patterns import benchmark_pattern, kernel_for
from repro.sim import simulate_sweep, verify_banked_stencil
from repro.workloads import box_image, detect_edges, noise_image


class TestSourceToSimulation:
    """Fig. 1(b) source code all the way to cycle-accurate verification."""

    def test_log_kernel_full_flow(self):
        nest = log_kernel_nest()
        pattern = extract_pattern(nest)
        solution = partition(pattern)
        assert solution.n_banks == 13

        # Scaled-down frame, same aspect of behaviour.
        shape = (16, 15)
        mapping = BankMapping(solution=solution, shape=shape)
        assert mapping.verify_bijective()

        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1

        image = noise_image(*shape, seed=42)
        ok, result = verify_banked_stencil(mapping, image, kernel_for("log"))
        assert ok and result.measured_ii == 1.0

        code = generate_kernel(nest, {"X": BankMapping(solution=solution, shape=(640, 480))})
        assert "X_bank0" in code and "% 13" in code

    def test_constrained_flow_nmax(self):
        nest = log_kernel_nest()
        schedule = schedule_nest(nest, n_max=10)
        assert schedule.ii == 2

        solution = schedule.solution_for("X")
        mapping = BankMapping(solution=solution, shape=(12, 21))
        report = simulate_sweep(mapping)
        # The scheduler's claimed II is exactly what the simulator measures.
        assert report.worst_cycles == schedule.ii


class TestUserAuthoredKernel:
    def test_custom_stencil_source(self):
        source = """
        array A[32][32];
        for (r = 1; r <= 30; r++)
          for (c = 1; c <= 30; c++)
            B[r][c] = A[r-1][c] + A[r][c-1] + 4*A[r][c] + A[r][c+1] + A[r+1][c];
        """
        nest = parse_kernel(source)
        pattern = extract_pattern(nest)
        assert pattern.size == 5

        solution = partition(pattern)
        assert solution.n_banks == 5
        assert verify_conflict_free(solution, window_radius=5)

        mapping = BankMapping(solution=solution, shape=nest.array_shape("A"))
        memory = BankedMemory(mapping=mapping)
        data = np.arange(32 * 32, dtype=np.int64).reshape(32, 32)
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)


class TestAllBenchmarksEndToEnd:
    @pytest.mark.parametrize(
        "name, shape",
        [
            ("log", (14, 15)),
            ("canny", (12, 27)),
            ("prewitt", (10, 11)),
            ("se", (8, 9)),
            ("median", (11, 10)),
            ("gaussian", (12, 14)),
        ],
    )
    def test_2d_benchmark_flow(self, name, shape):
        pattern = benchmark_pattern(name)
        solution = partition(pattern)
        mapping = BankMapping(solution=solution, shape=shape)
        assert mapping.verify_bijective()
        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1, name
        estimate = estimate_resources(mapping)
        assert estimate.memory_blocks >= solution.n_banks

    def test_sobel3d_flow(self):
        pattern = benchmark_pattern("sobel3d")
        solution = partition(pattern)
        assert solution.n_banks == 27
        mapping = BankMapping(solution=solution, shape=(5, 5, 29))
        assert mapping.verify_bijective()
        report = simulate_sweep(mapping, limit=40)
        assert report.worst_cycles == 1


class TestStorageConsistency:
    """The closed-form overheads, the mapping's accounting, and the block
    conversion must all agree — these feed Table 1."""

    def test_three_way_agreement(self):
        for name, shape in [("log", (24, 27)), ("se", (12, 13)), ("median", (10, 18))]:
            solution = partition(benchmark_pattern(name))
            mapping = BankMapping(solution=solution, shape=shape)
            from repro.core import ours_overhead_elements

            closed_form = ours_overhead_elements(shape, solution.n_banks)
            assert mapping.overhead_elements == closed_form
            assert overhead_blocks(closed_form) >= 0

    def test_ltb_vs_ours_at_equal_banks(self):
        """Same bank count → our overhead never exceeds LTB's (the paper's
        guarantee for the first five patterns)."""
        from repro.core import ours_overhead_elements

        for name in ("log", "canny", "prewitt", "se"):
            pattern = benchmark_pattern(name)
            n = partition(pattern).n_banks
            for shape in [(640, 480), (1280, 720), (1920, 1080)]:
                assert ours_overhead_elements(shape, n) <= ltb_overhead_elements(shape, n)


class TestObjectivePolicies:
    def test_storage_policy_beats_latency_policy_on_overhead(self):
        shape = (64, 60)  # 60 not divisible by 13
        latency = solve(benchmark_pattern("log"), shape=shape)
        storage = solve(benchmark_pattern("log"), shape=shape, objective=Objective.STORAGE)
        assert storage.overhead_elements == 0
        assert latency.overhead_elements > 0
        assert latency.solution.delta_ii <= storage.solution.delta_ii

    def test_policies_all_simulate_correctly(self):
        shape = (12, 24)
        for objective in (Objective.LATENCY, Objective.STORAGE):
            result = solve(
                benchmark_pattern("log"), shape=shape, n_max=12, objective=objective
            )
            assert result.mapping is not None
            report = simulate_sweep(result.mapping)
            assert report.worst_cycles == result.solution.delta_ii + 1


class TestPipelineSpeedups:
    def test_speedup_scales_with_banks(self):
        img = box_image(14, 15)
        full = detect_edges(img, "log")            # 13 banks
        half = detect_edges(img, "log", n_max=10)  # 7 banks, 2 cycles
        assert full.speedup > half.speedup
        assert full.matches_golden and half.matches_golden

    def test_ltb_and_ours_equivalent_behaviour_on_log(self):
        """Both algorithms' solutions serve LoG in one cycle; they differ
        in search cost and storage, not in achieved bandwidth."""
        pattern = benchmark_pattern("log")
        ours = partition(pattern)
        ltb = ltb_partition(pattern).solution
        for solution in (ours, ltb):
            banks = [solution.bank_of(d) for d in pattern.offsets]
            assert len(set(banks)) == 13
