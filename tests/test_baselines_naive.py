"""Unit tests for the cyclic / block / duplication baselines."""

import pytest

from repro.baselines import (
    BlockScheme,
    CyclicScheme,
    DuplicationScheme,
    best_cyclic,
    cyclic_delta_ii,
    duplication_for,
)
from repro.core import Pattern, partition
from repro.patterns import log_pattern, se_pattern


class TestCyclic:
    def test_bank_of(self):
        scheme = CyclicScheme(dim=1, n_banks=4, ndim=2)
        assert scheme.bank_of((7, 9)) == 1

    def test_conflicts_on_2d_stencils(self):
        """Every Table 1 2-D pattern has two taps sharing a row and a
        column, so single-dimension cyclic banking always conflicts."""
        for pattern in (log_pattern(), se_pattern()):
            assert cyclic_delta_ii(pattern, pattern.size) > 0

    def test_conflict_free_for_lines(self):
        line = Pattern([(0, i) for i in range(4)])
        assert cyclic_delta_ii(line, 4) == 0

    def test_best_cyclic_picks_better_dim(self):
        tall = Pattern([(i, 0) for i in range(5)])
        scheme = best_cyclic(tall, 5)
        assert scheme.dim == 0

    def test_as_solution_records_measured_delta(self):
        solution = CyclicScheme(dim=0, n_banks=13, ndim=2).as_solution(log_pattern())
        assert solution.algorithm == "cyclic"
        assert solution.delta_ii > 0

    def test_overhead(self):
        scheme = CyclicScheme(dim=1, n_banks=13, ndim=2)
        assert scheme.overhead_elements((640, 480)) == 640  # pad 480 -> 481

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicScheme(dim=2, n_banks=4, ndim=2)
        with pytest.raises(ValueError):
            CyclicScheme(dim=0, n_banks=0, ndim=2)

    def test_worse_than_linear_transform(self):
        """The motivating comparison: same bank count, more conflicts."""
        ours = partition(log_pattern())
        assert ours.delta_ii == 0
        assert cyclic_delta_ii(log_pattern(), ours.n_banks) >= 1


class TestBlock:
    def test_interior_window_lands_in_one_bank(self):
        scheme = BlockScheme(dim=0, n_banks=4, shape=(40, 40))
        # interior offsets: whole 5x5 window inside one 10-wide chunk
        banks = {scheme.bank_of((r, c)) for r in range(2, 7) for c in range(2, 7)}
        assert len(banks) == 1

    def test_worst_delta_is_catastrophic(self):
        scheme = BlockScheme(dim=0, n_banks=4, shape=(40, 40))
        assert scheme.worst_delta_ii(log_pattern()) >= log_pattern().size // 2

    def test_overhead(self):
        scheme = BlockScheme(dim=1, n_banks=7, shape=(10, 20))
        # chunk = 3, 7*3 = 21 -> pad 1 column of 10
        assert scheme.overhead_elements() == 10

    def test_clamps_out_of_range(self):
        scheme = BlockScheme(dim=0, n_banks=4, shape=(8, 8))
        assert scheme.bank_of((-3, 0)) == 0
        assert scheme.bank_of((100, 0)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockScheme(dim=3, n_banks=2, shape=(4, 4))


class TestDuplication:
    def test_zero_delta(self):
        scheme = duplication_for(log_pattern(), (64, 64))
        assert scheme.delta_ii == 0

    def test_overhead_is_m_minus_1_copies(self):
        scheme = duplication_for(log_pattern(), (64, 64))
        assert scheme.overhead_elements == 12 * 64 * 64

    def test_write_amplification(self):
        assert duplication_for(se_pattern(), (8, 8)).write_amplification == 5

    def test_reader_owns_copy(self):
        scheme = DuplicationScheme(copies=3, shape=(4, 4))
        assert scheme.bank_of(2, (0, 0)) == 2
        with pytest.raises(ValueError):
            scheme.bank_of(3, (0, 0))

    def test_overhead_dwarfs_partitioning(self):
        """The paper's Section 1 argument: duplication costs ~m*W while
        partitioning costs < N * prod(w[:-1])."""
        from repro.core import ours_overhead_elements

        dup = duplication_for(log_pattern(), (640, 480)).overhead_elements
        ours = ours_overhead_elements((640, 480), 13)
        assert dup > 1000 * ours

    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicationScheme(copies=0, shape=(4, 4))
        with pytest.raises(ValueError):
            DuplicationScheme(copies=2, shape=())
