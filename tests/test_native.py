"""The compiled tier's contract: selection, fallback, and degradation.

Engine *equivalence* lives in the shared dual/tri-engine matrices
(``test_vectorized_sim.py``, ``test_ltb_vectorized.py``,
``test_baseline_sim.py``); this file covers everything around it:

* ``engine="auto"`` selection order (native → vectorized → scalar) and the
  guarantee that auto never raises over a missing extension;
* explicit ``engine="native"`` failing loudly with
  :class:`~repro.errors.NativeUnavailableError` and the build hint;
* the ``REPRO_NATIVE=0`` kill switch forcing the NumPy engines even when
  the extension is importable;
* the fused-kernel spec registry's validation rules;
* the verify tier degrading to its two-engine differential form — not
  erroring — when the native engine is unavailable.

Everything here runs (and must pass) with *and* without the extension;
the few assertions that need a built extension guard on
``native.available()`` inline rather than skipping whole tests.
"""

from __future__ import annotations

import pytest

from repro import NativeUnavailableError, native
from repro.baselines.ltb import LTB_ENGINES, ltb_partition, resolve_ltb_engine
from repro.core import BankMapping, partition
from repro.errors import MappingError, ReproError, SimulationError
from repro.patterns import log_pattern, se_pattern
from repro.sim.memsim import ENGINES, resolve_engine, simulate_sweep
from repro.verify.oracles import _differential_engines

# Whether the extension is importable at all — deliberately ignores the
# REPRO_NATIVE kill switch (tests below toggle that per-case).
_BUILT = native.build_info()["import_error"] is None


def _mapping(shape=(12, 14)):
    return BankMapping(solution=partition(log_pattern()), shape=shape)


class TestSelection:
    def test_auto_prefers_native_then_vectorized(self, monkeypatch):
        mapping = _mapping()
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        expected = "native" if native.available() else "vectorized"
        assert resolve_engine(mapping) == expected
        assert resolve_ltb_engine("auto") == expected

    def test_kill_switch_forces_numpy_engines(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert not native.available()
        assert resolve_engine(_mapping()) == "vectorized"
        assert resolve_ltb_engine("auto") == "vectorized"

    def test_auto_never_raises_when_native_missing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        report = simulate_sweep(_mapping(), engine="auto")
        assert report.iterations > 0
        result = ltb_partition(se_pattern(), engine="auto")
        assert result.solution.n_banks >= 1

    def test_subclass_resolves_to_scalar(self):
        class Tweaked(BankMapping):
            def offset_of(self, element, ops=None):
                return super().offset_of(element, ops)

        mapping = Tweaked(solution=partition(log_pattern()), shape=(12, 14))
        assert resolve_engine(mapping) == "scalar"

    def test_engine_catalogs_list_native(self):
        assert "native" in ENGINES
        assert "native" in LTB_ENGINES


class TestExplicitNativeFailsLoudly:
    def test_sim_raises_native_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with pytest.raises(NativeUnavailableError, match="REPRO_NATIVE=0"):
            simulate_sweep(_mapping(), engine="native")

    def test_ltb_raises_native_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with pytest.raises(NativeUnavailableError, match="engine='auto'"):
            ltb_partition(log_pattern(), engine="native")

    def test_error_type_is_catchable_both_ways(self):
        # Callers that treat the tier as optional can catch RuntimeError;
        # callers in this package can catch the repro root.
        assert issubclass(NativeUnavailableError, ReproError)
        assert issubclass(NativeUnavailableError, RuntimeError)

    def test_ineligible_mapping_beats_availability(self, monkeypatch):
        # A formula-overriding subclass is rejected for engine="native"
        # with the dispatch error (not an availability error), matching
        # the vectorized engine's contract.
        class Tweaked(BankMapping):
            def offset_of(self, element, ops=None):
                return super().offset_of(element, ops)

        mapping = Tweaked(solution=partition(log_pattern()), shape=(12, 14))
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with pytest.raises(SimulationError, match="stock BankMapping"):
            simulate_sweep(mapping, engine="native")


class TestKillSwitch:
    def test_build_info_reports_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        info = native.build_info()
        assert info["available"] is False
        assert info["kill_switched"] is True

    def test_build_info_without_kill_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        info = native.build_info()
        assert info["kill_switched"] is False
        assert info["available"] is _BUILT
        if _BUILT:
            assert info["abi_version"] == 1
            assert info["import_error"] is None
        else:
            assert info["import_error"]

    def test_require_mentions_build_hint_when_not_built(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        if _BUILT:
            assert native.require() is not None
        else:
            with pytest.raises(NativeUnavailableError, match="make build-ext"):
                native.require()


class TestSpecRegistry:
    def test_stock_mapping_has_spec(self):
        assert native.has_native_spec(BankMapping)
        spec = native.native_spec_for(_mapping())
        assert spec["kind"] == 0
        assert spec["n_banks"] == _mapping().n_banks

    def test_exact_type_lookup_excludes_subclasses(self):
        class Sub(BankMapping):
            pass

        assert not native.has_native_spec(Sub)
        sub = Sub(solution=partition(log_pattern()), shape=(12, 14))
        assert native.native_spec_for(sub) is None

    def test_non_mapping_type_rejected(self):
        with pytest.raises(MappingError, match="BankMapping subclass"):
            native.register_native_spec(dict, lambda m: {})

    def test_non_callable_builder_rejected(self):
        class Sub2(BankMapping):
            pass

        with pytest.raises(MappingError, match="not callable"):
            native.register_native_spec(Sub2, None)


class TestVerifyDegradation:
    def test_oracles_degrade_to_two_engine_form(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert _differential_engines() == ("scalar", "vectorized")

    def test_oracles_include_native_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        expected = (
            ("scalar", "vectorized", "native")
            if _BUILT
            else ("scalar", "vectorized")
        )
        assert _differential_engines() == expected

    def test_two_engine_oracles_still_run_clean(self, monkeypatch):
        # The full differential oracles execute without error (and without
        # failures) when the native engine is switched off mid-session.
        from repro.verify import CaseSpec, run_oracles

        monkeypatch.setenv("REPRO_NATIVE", "0")
        case = CaseSpec.from_dict(
            {
                "seed": 0,
                "index": 0,
                "label": "native-degradation",
                "offsets": [[0, 0], [0, 1], [1, 0], [2, 2]],
                "shape": [9, 13],
                "n_max": None,
                "scheme": "same-size",
            }
        )
        outcome = run_oracles(case)
        assert outcome.ok, outcome.failures
        assert "sim_differential" in outcome.checked
        assert "ltb_differential" in outcome.checked
