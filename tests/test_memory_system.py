"""Tests for the multi-array memory system (read X / write Y pipelines)."""

import numpy as np
import pytest

from repro.core import BankMapping, partition
from repro.errors import SimulationError
from repro.hw import MemorySystem, Transaction
from repro.patterns import log_pattern, se_pattern


def build_system(shape=(10, 11)):
    x_map = BankMapping(solution=partition(se_pattern()), shape=shape)
    y_map = BankMapping(solution=partition(se_pattern()), shape=shape)
    return MemorySystem(mappings={"X": x_map, "Y": y_map})


class TestConstruction:
    def test_builds_one_memory_per_array(self):
        system = build_system()
        assert set(system.memories) == {"X", "Y"}

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            MemorySystem(mappings={})

    def test_unknown_array(self):
        system = build_system()
        with pytest.raises(SimulationError):
            system.load("Z", np.zeros((10, 11)))


class TestLoadDump:
    def test_roundtrip_both_arrays(self):
        system = build_system()
        x = np.arange(110, dtype=np.int64).reshape(10, 11)
        y = x * 2
        system.load("X", x)
        system.load("Y", y)
        assert np.array_equal(system.dump("X"), x)
        assert np.array_equal(system.dump("Y"), y)


class TestTransactions:
    def test_read_write_iteration_single_cycle(self):
        system = build_system()
        x = np.arange(110, dtype=np.int64).reshape(10, 11)
        system.load("X", x)
        window = se_pattern().translated((3, 4))
        txn = Transaction.make(
            reads={"X": list(window.offsets)},
            writes={"Y": [((3, 4), 99)]},
        )
        result = system.execute(txn)
        assert result.cycles == 1
        assert result.values["X"] == [int(x[e]) for e in window.offsets]
        assert system.memories["Y"].banks[
            system.mappings["Y"].bank_of((3, 4))
        ].peek(system.mappings["Y"].offset_of((3, 4))) == 99

    def test_cycles_advance_shared_clock(self):
        system = build_system()
        system.load("X", np.zeros((10, 11), dtype=np.int64))
        window = se_pattern().translated((2, 2))
        txn = Transaction.make(reads={"X": list(window.offsets)})
        before = system.cycle
        system.execute(txn)
        assert system.cycle == before + 1

    def test_conflicting_reads_cost_extra_cycles(self):
        system = build_system()
        system.load("X", np.ones((10, 11), dtype=np.int64))
        txn = Transaction.make(reads={"X": [(2, 2), (2, 2)]})  # same bank twice
        result = system.execute(txn)
        assert result.cycles == 2

    def test_conflicting_writes_retry(self):
        system = build_system()
        mapping = system.mappings["Y"]
        # find two elements in the same Y bank
        target = mapping.bank_of((0, 0))
        other = next(
            e for e in mapping.iter_elements()
            if e != (0, 0) and mapping.bank_of(e) == target
        )
        txn = Transaction.make(writes={"Y": [((0, 0), 1), (other, 2)]})
        result = system.execute(txn)
        assert result.cycles == 2

    def test_full_stencil_pipeline_matches_golden(self):
        """Run the whole LoG loop nest through the system: reads banked,
        writes banked, output reassembled and compared to NumPy."""
        from repro.patterns import kernel_for
        from repro.sim.functional import golden_stencil

        shape = (12, 13)
        x_map = BankMapping(solution=partition(log_pattern()), shape=shape)
        y_map = BankMapping(solution=partition(log_pattern()), shape=shape)
        system = MemorySystem(mappings={"X": x_map, "Y": y_map})

        rng = np.random.default_rng(3)
        image = rng.integers(0, 255, shape)
        system.load("X", image)
        system.load("Y", np.zeros(shape, dtype=np.int64))

        kernel = kernel_for("log")
        taps = [tuple(t) for t in np.argwhere(kernel != 0)]
        out_shape = tuple(w - k + 1 for w, k in zip(shape, kernel.shape))
        total_cycles = 0
        for offset in np.ndindex(*out_shape):
            reads = [tuple(o + t for o, t in zip(offset, tap)) for tap in taps]
            txn = Transaction.make(reads={"X": reads})
            result = system.execute(txn)
            value = sum(
                int(kernel[tap]) * v for tap, v in zip(taps, result.values["X"])
            )
            write_txn = Transaction.make(writes={"Y": [(offset, value)]})
            total_cycles += result.cycles + system.execute(write_txn).cycles

        golden = golden_stencil(image, kernel)
        stored = system.dump("Y")[: out_shape[0], : out_shape[1]]
        assert np.array_equal(stored, golden)
        iterations = out_shape[0] * out_shape[1]
        assert total_cycles == 2 * iterations  # 1 read cycle + 1 write cycle
