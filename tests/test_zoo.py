"""Tests for the extended pattern zoo."""

import pytest

from repro.core import check_theorem1, partition, verify_conflict_free
from repro.errors import PatternError
from repro.patterns import (
    ZOO,
    bilinear_taps,
    block_match,
    dilated_cross,
    fd_star,
    kirsch,
    roberts,
    sad_window_pair,
    separable_pair,
    zoo_patterns,
)


class TestShapes:
    def test_dilated_cross_geometry(self):
        p = dilated_cross(arm=2, dilation=2)
        assert p.size == 9
        assert p.extents == (9, 9)  # big box, few taps

    def test_dilated_cross_validation(self):
        with pytest.raises(PatternError):
            dilated_cross(arm=0)

    def test_separable_pair(self):
        h, v = separable_pair()
        assert h.extents == (1, 5)
        assert v.extents == (5, 1)

    def test_block_match(self):
        assert block_match(4).size == 16
        with pytest.raises(PatternError):
            block_match(0)

    def test_fd_star(self):
        assert fd_star(4).size == 9
        with pytest.raises(PatternError):
            fd_star(3)

    def test_small_operators(self):
        assert roberts().size == 4
        assert kirsch().size == 9
        assert bilinear_taps().size == 4

    def test_sad_pair_two_clusters(self):
        p = sad_window_pair(block=4, displacement=2)
        assert p.size == 32
        assert p.extents == (4, 10)


class TestBanking:
    def test_all_zoo_patterns_partition_conflict_free(self):
        for name, pattern in zoo_patterns():
            solution = partition(pattern)
            assert verify_conflict_free(solution, window_radius=2), name
            assert check_theorem1(pattern), name

    def test_separable_passes_need_m_banks_each(self):
        h, v = separable_pair()
        assert partition(h).n_banks == 5
        assert partition(v).n_banks == 5

    def test_dense_blocks_are_tight(self):
        # dense rectangles transform to consecutive z: N_f = m exactly
        assert partition(block_match(4)).n_banks == 16
        assert partition(kirsch()).n_banks == 9

    def test_dilated_pays_a_gap(self):
        """Sparse wide-box patterns are where the constant-time alpha is
        least tight: 9 taps need 13 banks."""
        solution = partition(dilated_cross())
        assert solution.n_banks > dilated_cross().size

    def test_registry_complete(self):
        assert set(ZOO) == {name for name, _ in zoo_patterns()}
