"""Unit tests for repro.core.opcount."""

import pytest

from repro.core import NULL_COUNTER, OpCounter, counting
from repro.core.opcount import resolve


class TestOpCounter:
    def test_total(self):
        ops = OpCounter()
        ops.add(2)
        ops.mul()
        assert ops.total == 3

    def test_categories(self):
        ops = OpCounter()
        ops.sub()
        ops.div(3)
        ops.mod()
        ops.abs_()
        assert ops.counts == {"sub": 1, "div": 3, "mod": 1, "abs": 1}

    def test_arithmetic_excludes_compares(self):
        ops = OpCounter()
        ops.add(5)
        ops.compare(10)
        assert ops.arithmetic == 5
        assert ops.total == 15

    def test_reset(self):
        ops = OpCounter()
        ops.add()
        ops.reset()
        assert ops.total == 0

    def test_snapshot_is_copy(self):
        ops = OpCounter()
        ops.add()
        snap = ops.snapshot()
        snap["add"] = 99
        assert ops.counts["add"] == 1

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().charge("add", -1)

    def test_custom_category(self):
        ops = OpCounter()
        ops.charge("shift", 4)
        assert ops.total == 4


class TestNullCounter:
    def test_discards_everything(self):
        NULL_COUNTER.add(100)
        assert NULL_COUNTER.total == 0

    def test_still_validates(self):
        with pytest.raises(ValueError):
            NULL_COUNTER.charge("add", -5)

    def test_resolve(self):
        assert resolve(None) is NULL_COUNTER
        ops = OpCounter()
        assert resolve(ops) is ops


class TestCountingContext:
    def test_yields_fresh_counter(self):
        with counting() as ops:
            ops.add(3)
        assert ops.total == 3
