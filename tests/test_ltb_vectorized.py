"""Engine equivalence of the LTB search: scalar vs vectorized vs native.

Every batched engine must be indistinguishable from the published scalar
enumeration in every observable: the winning ``(N, α)`` (lexicographic
first hit), ``vectors_tried``/``candidates_tried``, and the *exact*
per-kind :class:`~repro.core.opcount.OpCounter` charges — including on the
failure path, where ``n_max`` exhaustion must raise with identical charges
at any chunk boundary.  Tests parametrize over the shared ``fast_engine``
fixture (``conftest.py``), so the compiled engine runs the same bodies when
built and skips with a visible reason when not.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import LTB_ENGINES, ltb_chunk_budget, ltb_partition
from repro.baselines.ltb import resolve_ltb_engine
from repro.core import OpCounter, Pattern
from repro.errors import PartitioningError
from repro.patterns import gaussian_pattern, log_pattern, median_pattern


def _run(pattern, engine, **kwargs):
    """One instrumented run: (result, counter) for an engine."""
    ops = OpCounter()
    result = ltb_partition(pattern, ops=ops, engine=engine, **kwargs)
    return result, ops


def _assert_equivalent(pattern, engine="vectorized", **kwargs):
    scalar, scalar_ops = _run(pattern, "scalar")
    fast, fast_ops = _run(pattern, engine, **kwargs)
    assert fast.solution.n_banks == scalar.solution.n_banks
    assert fast.solution.transform.alpha == scalar.solution.transform.alpha
    assert fast.vectors_tried == scalar.vectors_tried
    assert fast.candidates_tried == scalar.candidates_tried
    assert fast_ops.counts == scalar_ops.counts
    return scalar


@st.composite
def patterns_2d(draw, max_extent: int = 4, max_size: int = 6):
    coordinate = st.integers(min_value=-max_extent, max_value=max_extent)
    offset = st.tuples(coordinate, coordinate)
    offsets = draw(st.sets(offset, min_size=1, max_size=max_size))
    return Pattern(offsets)


class TestEquivalence:
    @pytest.mark.slow
    def test_benchmarks(self, all_benchmarks, fast_engine):
        for name, pattern in all_benchmarks:
            _assert_equivalent(pattern, engine=fast_engine)

    def test_single_element_pattern(self, fast_engine):
        # m = 1: no duplicate scan; the first vector (0,)*n always wins.
        result = _assert_equivalent(Pattern([(0, 0)]), engine=fast_engine)
        assert result.solution.n_banks == 1
        assert result.vectors_tried == 1

    def test_one_dimensional(self, fast_engine):
        _assert_equivalent(Pattern([(0,), (1,), (3,)]), engine=fast_engine)

    @pytest.mark.slow
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(pattern=patterns_2d())
    def test_random_patterns(self, pattern, fast_engines):
        for engine in fast_engines:
            _assert_equivalent(pattern, engine=engine)

    @pytest.mark.parametrize("chunk", [1, 2, 9, 10, 100])
    def test_chunk_boundaries(self, chunk):
        # The LoG hit lands at different positions within a block for each
        # budget; charges and the first hit must not move.  (chunk is a
        # vectorized-engine knob; the native engine ignores it.)
        _assert_equivalent(log_pattern(), chunk=chunk)

    def test_chunk_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_LTB_CHUNK", "7")
        assert ltb_chunk_budget() == 7
        _assert_equivalent(gaussian_pattern())

    def test_auto_matches_resolved_engine(self):
        pattern = median_pattern()
        resolved = resolve_ltb_engine("auto")
        assert resolved in ("vectorized", "native")
        auto, auto_ops = _run(pattern, "auto")
        fast, fast_ops = _run(pattern, resolved)
        assert auto == fast
        assert auto_ops.counts == fast_ops.counts


class TestExhaustion:
    @pytest.mark.parametrize("chunk", [1, 3, 50, None])
    def test_nmax_exhaustion_charges_match_scalar(self, chunk, fast_engine):
        # LoG needs 13 banks; capping at 12 exhausts every candidate N.
        pattern = log_pattern()
        scalar_ops = OpCounter()
        with pytest.raises(PartitioningError):
            ltb_partition(pattern, n_max=12, ops=scalar_ops, engine="scalar")
        fast_ops = OpCounter()
        with pytest.raises(PartitioningError):
            ltb_partition(
                pattern, n_max=12, ops=fast_ops, engine=fast_engine, chunk=chunk
            )
        assert fast_ops.counts == scalar_ops.counts


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown LTB engine"):
            ltb_partition(log_pattern(), engine="simd")

    def test_engine_names(self):
        assert LTB_ENGINES == ("auto", "scalar", "vectorized", "native")

    @pytest.mark.parametrize("chunk", [0, -4])
    def test_nonpositive_chunk_rejected(self, chunk):
        with pytest.raises(ValueError, match="chunk budget"):
            ltb_chunk_budget(chunk)

    def test_nonpositive_chunk_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LTB_CHUNK", "0")
        with pytest.raises(ValueError, match="REPRO_LTB_CHUNK"):
            ltb_chunk_budget()

    def test_explicit_chunk_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LTB_CHUNK", "11")
        assert ltb_chunk_budget(5) == 5
