"""Tests for program-level (multi-kernel) banking."""

import pytest

from repro.errors import HLSError
from repro.hls import (
    Program,
    parse_kernel,
    parse_program,
    schedule_program,
)

TWO_PASS = """
array X[64][64];
for (i = 1; i <= 62; i++)
  for (j = 1; j <= 62; j++)
    Y[i][j] = X[i-1][j] + X[i+1][j];

for (i = 1; i <= 62; i++)
  for (j = 1; j <= 62; j++)
    Z[i][j] = X[i][j-1] + X[i][j] + X[i][j+1];
"""


class TestParseProgram:
    def test_splits_on_blank_lines(self):
        program = parse_program(TWO_PASS)
        assert len(program.nests) == 2

    def test_read_arrays_across_kernels(self):
        program = parse_program(TWO_PASS)
        assert program.read_arrays == ("X",)

    def test_patterns_of(self):
        program = parse_program(TWO_PASS)
        patterns = program.patterns_of("X")
        assert [p.size for p in patterns] == [2, 3]

    def test_patterns_of_unknown(self):
        program = parse_program(TWO_PASS)
        with pytest.raises(HLSError):
            program.patterns_of("Q")

    def test_empty_program(self):
        with pytest.raises(HLSError):
            parse_program("   \n  \n ")
        with pytest.raises(HLSError):
            Program(nests=())


class TestScheduleProgram:
    def test_joint_banking_serves_both_kernels(self):
        schedule = schedule_program(parse_program(TWO_PASS))
        # union of the vertical pair and horizontal triple = 5 taps
        assert schedule.solution_for("X").n_banks == 5
        assert schedule.kernel_iis == (1, 1)

    def test_single_kernel_program_matches_nest_schedule(self):
        from repro.hls import schedule_nest

        source = "for (i = 1; i <= 6; i++) Y[i] = X[i-1] + X[i] + X[i+1];"
        program = parse_program(source)
        prog_schedule = schedule_program(program)
        nest_schedule = schedule_nest(parse_kernel(source))
        assert (
            prog_schedule.solution_for("X").n_banks
            == nest_schedule.solution_for("X").n_banks
        )

    def test_joint_never_fewer_banks_than_widest_kernel(self):
        program = parse_program(TWO_PASS)
        schedule = schedule_program(program)
        widest = max(p.size for p in program.patterns_of("X"))
        assert schedule.solution_for("X").n_banks >= widest

    def test_individual_kernel_ii_never_worse_than_union(self):
        """A kernel issuing a subset of the union pattern cannot conflict
        more than the union does."""
        schedule = schedule_program(parse_program(TWO_PASS), n_max=3)
        union_delta = schedule.solution_for("X").delta_ii
        assert all(ii <= union_delta + 1 for ii in schedule.kernel_iis)

    def test_total_cycles_sum_kernels(self):
        schedule = schedule_program(parse_program(TWO_PASS))
        per_kernel = 62 * 62  # trip count at II = 1
        assert schedule.total_cycles == 2 * (schedule.depth + per_kernel - 1)

    def test_total_banks(self):
        schedule = schedule_program(parse_program(TWO_PASS))
        assert schedule.total_banks == 5

    def test_unknown_array_lookup(self):
        schedule = schedule_program(parse_program(TWO_PASS))
        with pytest.raises(HLSError):
            schedule.solution_for("Q")

    def test_multi_array_program(self):
        source = """
        for (i = 1; i <= 6; i++) Y[i] = A[i-1] + A[i+1];

        for (i = 1; i <= 6; i++) Z[i] = B[i] + B[i+1] + A[i];
        """
        schedule = schedule_program(parse_program(source))
        assert schedule.solution_for("A").n_banks == 3  # union {-1, 0, +1}
        assert schedule.solution_for("B").n_banks == 2
