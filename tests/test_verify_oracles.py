"""The oracle catalog: coverage, crash handling, serialization."""

from __future__ import annotations

import pytest

from repro.verify import CaseSpec, OracleFailure, ORACLE_NAMES, run_oracles
from repro.verify.oracles import LTB_MAX_NDIM, LTB_MAX_SIZE


def _case(**overrides):
    payload = {
        "seed": 0,
        "index": 0,
        "label": "unit",
        "offsets": [[0, 1], [1, 0], [1, 1], [1, 2], [2, 1]],
        "shape": [8, 9],
        "n_max": None,
        "scheme": "same-size",
    }
    payload.update(overrides)
    return CaseSpec.from_dict(payload)


class TestCoverage:
    def test_small_case_runs_every_oracle(self):
        # 2-D: the leading-axis permutation subgroup is trivial, so the
        # permutation oracle declares itself not applicable.
        outcome = run_oracles(_case())
        assert outcome.ok, outcome.failures
        assert set(outcome.checked) == set(ORACLE_NAMES) - {"symmetry_permutation"}

    def test_two_level_case_is_clean(self):
        outcome = run_oracles(_case(n_max=4, scheme="two-level"))
        assert outcome.ok, outcome.failures

    def test_same_size_sweep_case_is_clean(self):
        outcome = run_oracles(_case(n_max=4, scheme="same-size"))
        assert outcome.ok, outcome.failures

    def test_large_pattern_skips_only_the_ltb_oracle(self):
        # Nine points > LTB_MAX_SIZE: the exhaustive-search cross-check is
        # cost-gated out, everything else still runs.
        offsets = [[i, j] for i in range(3) for j in range(3)]
        assert len(offsets) > LTB_MAX_SIZE
        outcome = run_oracles(_case(offsets=offsets, shape=[6, 6]))
        assert outcome.ok, outcome.failures
        assert set(outcome.checked) == set(ORACLE_NAMES) - {
            "ltb_differential",
            "symmetry_permutation",  # 2-D: no non-trivial leading-axis perm
        }

    def test_4d_case_skips_only_the_ltb_oracle(self):
        assert 4 > LTB_MAX_NDIM
        outcome = run_oracles(
            _case(
                offsets=[[0, 0, 0, 0], [1, 0, 1, 0], [0, 1, 0, 1]],
                shape=[3, 3, 3, 3],
            )
        )
        assert outcome.ok, outcome.failures
        assert set(outcome.checked) == set(ORACLE_NAMES) - {"ltb_differential"}

    def test_single_point_pattern_is_clean(self):
        outcome = run_oracles(_case(offsets=[[0, 0]], shape=[4, 4]))
        assert outcome.ok, outcome.failures

    def test_one_bank_ceiling_is_clean(self):
        outcome = run_oracles(_case(n_max=1, scheme="two-level"))
        assert outcome.ok, outcome.failures


class TestCrashWrapping:
    def test_solver_exception_becomes_crash_failure(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected solver crash")

        monkeypatch.setattr("repro.verify.oracles.partition", boom)
        outcome = run_oracles(_case())
        assert not outcome.ok
        assert outcome.checked == ("crash",)
        [failure] = outcome.failures
        assert failure.oracle == "crash"
        assert "injected solver crash" in failure.message

    def test_oracle_exception_becomes_its_own_failure(self, monkeypatch):
        def boom(ctx):
            raise RuntimeError("oracle blew up")

        monkeypatch.setitem(
            __import__("repro.verify.oracles", fromlist=["ORACLES"]).ORACLES,
            "mapping",
            boom,
        )
        outcome = run_oracles(_case())
        assert not outcome.ok
        [failure] = outcome.failures
        assert failure.oracle == "mapping"
        assert "oracle blew up" in failure.message


class TestSerialization:
    def test_failure_round_trip(self):
        failure = OracleFailure(oracle="delta_claim", message="shift 3 needs 4")
        assert OracleFailure.from_dict(failure.to_dict()) == failure

    def test_outcome_ok_property(self):
        outcome = run_oracles(_case())
        assert outcome.ok is True
        assert outcome.failures == []
