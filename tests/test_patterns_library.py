"""Unit tests for the benchmark pattern library."""

import numpy as np
import pytest

from repro.core import partition
from repro.patterns import (
    BENCHMARKS,
    EXPECTED_BANKS,
    EXPECTED_SIZES,
    RESOLUTIONS,
    SOBEL3D_DEPTH,
    all_benchmarks,
    benchmark_pattern,
    benchmark_shape,
    kernel_for,
    log_pattern,
    prewitt_pattern,
    se_pattern,
    sobel2d_pattern,
    sobel3d_pattern,
)
from repro.patterns import kernels


class TestSizes:
    def test_paper_element_counts(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            assert pattern.size == EXPECTED_SIZES[name], name

    def test_log_is_5x5_diamond(self):
        assert log_pattern().extents == (5, 5)

    def test_prewitt_is_3x3_minus_center(self):
        p = prewitt_pattern()
        assert p.size == 8
        assert not p.contains((1, 1))
        assert p.extents == (3, 3)

    def test_se_is_cross(self):
        assert se_pattern().offsets == ((0, 1), (1, 0), (1, 1), (1, 2), (2, 1))

    def test_sobel3d_is_cube_minus_center(self):
        p = sobel3d_pattern()
        assert p.ndim == 3
        assert p.size == 26
        assert not p.contains((1, 1, 1))

    def test_sobel2d_for_workloads(self):
        assert sobel2d_pattern().size == 8


class TestExpectedBanks:
    def test_ours_column(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            assert partition(pattern).n_banks == EXPECTED_BANKS[name][0], name


class TestLookup:
    def test_benchmark_pattern_case_insensitive(self):
        assert benchmark_pattern("LoG").size == 13

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_pattern("laplace")

    def test_all_benchmarks_order(self):
        names = [name for name, _ in all_benchmarks()]
        assert names == list(BENCHMARKS)

    def test_fresh_instances(self):
        assert benchmark_pattern("log") is not benchmark_pattern("log")


class TestShapes:
    def test_2d_shapes(self):
        assert benchmark_shape("log", "SD") == (640, 480)
        assert benchmark_shape("canny", "4K") == (3840, 2160)

    def test_sobel3d_gets_depth(self):
        assert benchmark_shape("sobel3d", "HD") == (1280, 720, SOBEL3D_DEPTH)

    def test_unknown_resolution(self):
        with pytest.raises(KeyError):
            benchmark_shape("log", "8K")

    def test_all_resolutions_present(self):
        assert set(RESOLUTIONS) == {"SD", "HD", "FullHD", "WQXGA", "4K"}


class TestKernels:
    def test_log_kernel_matches_paper_figure(self):
        kernel = kernels.as_array(kernels.LOG_KERNEL)
        assert kernel[2, 2] == 16
        assert kernel.sum() == 0  # LoG kernels are zero-mean
        assert np.count_nonzero(kernel) == 13

    def test_kernels_induce_their_patterns(self):
        for name in ("log", "canny", "se", "median", "gaussian"):
            kernel = kernel_for(name)
            nonzeros = {tuple(int(c) for c in t) for t in np.argwhere(kernel != 0)}
            assert nonzeros <= set(
                benchmark_pattern(name).normalized().offsets
            ), name

    def test_canny_kernel_is_dense_binomial(self):
        kernel = kernels.as_array(kernels.CANNY_SMOOTHING_KERNEL)
        assert np.count_nonzero(kernel) == 25
        assert kernel[2, 2] == 36
        assert kernel.sum() == 256

    def test_sobel3d_kernel_taps(self):
        kernel = kernels.sobel_3d_kernel()
        assert kernel.shape == (3, 3, 3)
        assert np.count_nonzero(kernel) == 26
        assert kernel[1, 1, 1] == 0

    def test_prewitt_kernel_representative(self):
        assert np.count_nonzero(kernel_for("prewitt")) == 6

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_for("boxblur")

    def test_all_kernels_listing(self):
        names = [name for name, _ in kernels.all_kernels()]
        assert "log" in names and "sobel_x" in names

    def test_nonzero_count_helper(self):
        assert kernels.nonzero_count(kernels.SE_MASK) == 5
