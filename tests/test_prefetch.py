"""Predictive store warming: neighbor generation, caps, idle gating, serving.

The :class:`~repro.serve.prefetch.Prefetcher` must only ever help: it
solves likely-next specs during idle time and writes them into the
solution store, but never becomes backpressure (hard cap, drops counted)
and never races foreground work (idle predicate re-checked per job).
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.obs import registry
from repro.serve import Prefetcher, ServeClient, SolutionStore, serve_in_thread
from repro.serve.protocol import parse_solve_spec


@pytest.fixture(autouse=True)
def _clean_registry():
    registry().reset()
    yield
    registry().reset()


@pytest.fixture()
def store(tmp_path):
    return SolutionStore(tmp_path / "store")


def _spec(n_max=8, benchmark="log"):
    return parse_solve_spec({"benchmark": benchmark, "n_max": n_max})


def _spec_offsets(offsets, n_max=8):
    return parse_solve_spec({"offsets": offsets, "n_max": n_max})


def _spec_shaped(shape, n_max=8, benchmark="log"):
    return parse_solve_spec(
        {"benchmark": benchmark, "shape": shape, "n_max": n_max}
    )


class TestNeighborGeneration:
    def test_unbounded_spec_has_no_neighbors(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            assert pf._neighbors(_spec(n_max=None)) == []
        finally:
            pf.close()

    def test_adjacent_budgets_without_history(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            neighbors = pf._neighbors(_spec(n_max=8))
            assert [(k, n.n_max) for k, n in neighbors] == [
                ("nmax", 9),
                ("nmax", 7),
            ]
        finally:
            pf.close()

    def test_sweep_direction_is_extrapolated(self, store):
        """6 then 8 predicts 10 first — the sweep's next rung."""
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec(n_max=6))
            neighbors = pf._neighbors(_spec(n_max=8))
            assert [(k, n.n_max) for k, n in neighbors] == [
                ("sweep", 10),
                ("nmax", 9),
                ("nmax", 7),
            ]
        finally:
            pf.close()

    def test_downward_sweeps_never_emit_non_positive_budgets(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec(n_max=3))
            neighbors = pf._neighbors(_spec(n_max=1))
            assert all(n.n_max >= 1 for _, n in neighbors)
            assert [(k, n.n_max) for k, n in neighbors] == [("nmax", 2)]
        finally:
            pf.close()

    def test_histories_are_per_kernel_family(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec(n_max=6, benchmark="log"))
            # A different kernel at 8 must not inherit log's 6->? stride.
            neighbors = pf._neighbors(_spec(n_max=8, benchmark="se"))
            assert [(k, n.n_max) for k, n in neighbors] == [
                ("nmax", 9),
                ("nmax", 7),
            ]
        finally:
            pf.close()

    def test_unroll_ladder_predicts_the_next_factor(self, store):
        """Seeing base, then unrolled(base, 2), predicts unrolled(base, 3)."""
        from repro.patterns.generators import unrolled

        base = _spec_offsets([[0, 0], [0, 1], [1, 0]], n_max=6)
        rung2 = parse_solve_spec(
            {
                "offsets": [list(o) for o in unrolled(base.pattern, 2).offsets],
                "n_max": 6,
            }
        )
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(base)
            neighbors = pf._neighbors(rung2)
            by_class = {k: n for k, n in neighbors}
            assert "unroll" in by_class
            predicted = by_class["unroll"].pattern.normalized()
            expected = unrolled(base.pattern, 3).normalized()
            assert predicted.offsets == expected.offsets
        finally:
            pf.close()

    def test_unroll_ladder_ignores_unrelated_patterns(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec_offsets([[0, 0], [0, 1], [1, 0]], n_max=6))
            neighbors = pf._neighbors(
                _spec_offsets([[0, 0], [2, 3], [5, 1], [4, 4]], n_max=6)
            )
            assert all(k != "unroll" for k, _ in neighbors)
        finally:
            pf.close()

    def test_shape_ladder_extrapolates_a_uniform_ratio(self, store):
        """32x32 then 64x64 for one kernel predicts 128x128."""
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec_shaped([32, 32], n_max=6))
            neighbors = pf._neighbors(_spec_shaped([64, 64], n_max=6))
            by_class = {k: n for k, n in neighbors}
            assert by_class["shape"].shape == (128, 128)
        finally:
            pf.close()

    def test_shape_ladder_extrapolates_a_uniform_increment(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec_shaped([48, 48], n_max=6))
            neighbors = pf._neighbors(_spec_shaped([64, 64], n_max=6))
            by_class = {k: n for k, n in neighbors}
            assert by_class["shape"].shape == (80, 80)
        finally:
            pf.close()

    def test_shape_ladder_respects_the_volume_cap(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec_shaped([512, 512], n_max=6))
            neighbors = pf._neighbors(_spec_shaped([2048, 2048], n_max=6))
            # 8192x8192 would exceed the cap: no shape-class neighbor.
            assert all(k != "shape" for k, _ in neighbors)
        finally:
            pf.close()

    def test_mixed_axis_progressions_are_not_extrapolated(self, store):
        pf = Prefetcher(store, idle=lambda: False)
        try:
            pf._neighbors(_spec_shaped([32, 32], n_max=6))
            neighbors = pf._neighbors(_spec_shaped([64, 48], n_max=6))
            assert all(k != "shape" for k, _ in neighbors)
        finally:
            pf.close()

    def test_per_class_counters_break_down_enqueues(self, store):
        """Sweep history is per shape; shape history is per budget — a walk
        that holds each constant in turn lights up both counters."""
        pf = Prefetcher(store, idle=lambda: False, cap=64)
        try:
            pf.observe(_spec_shaped([32, 32], n_max=6))  # nmax 7, 5
            pf.observe(_spec_shaped([32, 32], n_max=8))  # sweep 10; nmax 9 (7 queued)
            pf.observe(_spec_shaped([64, 64], n_max=8))  # shape 128x128; nmax 9, 7
            stats = pf.stats()
            by_class = stats["enqueued_by_class"]
            assert set(by_class) == {"nmax", "sweep", "unroll", "shape"}
            assert by_class["nmax"] == 5
            assert by_class["sweep"] == 1  # 6 -> 8 at 32x32 extrapolates 10
            assert by_class["shape"] == 1  # 32x32 -> 64x64 at 8 extrapolates 128x128
            assert by_class["unroll"] == 0
            assert stats["enqueued"] == sum(by_class.values())
        finally:
            pf.close()


class TestQueueDiscipline:
    def test_cap_drops_are_counted_never_queued(self, store):
        pf = Prefetcher(store, idle=lambda: False, cap=1)
        try:
            pf.observe(_spec(n_max=8))  # two neighbors against a cap of 1
            stats = pf.stats()
            assert stats["queued"] == 1
            assert stats["enqueued"] == 1
            assert stats["dropped"] == 1
        finally:
            pf.close()

    def test_cap_must_be_positive(self, store):
        with pytest.raises(ValueError, match="cap"):
            Prefetcher(store, cap=0)

    def test_duplicate_neighbors_enqueue_once(self, store):
        pf = Prefetcher(store, idle=lambda: False, cap=16)
        try:
            pf.observe(_spec(n_max=8))
            pf.observe(_spec(n_max=8))  # same neighbors, already queued
            assert pf.stats()["enqueued"] == 2
            assert pf.stats()["queued"] == 2
        finally:
            pf.close()

    def test_close_discards_the_queue_and_ignores_later_observes(self, store):
        pf = Prefetcher(store, idle=lambda: False, cap=16)
        pf.observe(_spec(n_max=8))
        pf.close()
        assert pf.stats()["queued"] == 0
        pf.observe(_spec(n_max=12))
        assert pf.stats()["queued"] == 0


class TestExecution:
    def test_neighbors_are_solved_and_stored_with_prefetch_meta(self, store):
        pf = Prefetcher(store, cap=16)
        try:
            spec = _spec(n_max=8)
            pf.observe(spec)
            assert pf.drain(timeout_s=30.0)
            stats = pf.stats()
            assert stats["stored"] == stats["solved"] == 2
            assert stats["errors"] == 0
            for n_max in (9, 7):
                digest = dataclasses.replace(spec, n_max=n_max).canonical_digest()
                path = store.root / f"{digest}.json"
                assert path.exists(), n_max
                document = json.loads(path.read_text())
                assert document["meta"]["prefetch"] is True
        finally:
            pf.close()

    def test_already_stored_neighbors_are_skipped(self, store):
        pf = Prefetcher(store, cap=16)
        try:
            spec = _spec(n_max=8)
            pf.observe(spec)
            assert pf.drain(timeout_s=30.0)
            first = pf.stats()
            assert first["stored"] == 2
            # The same miss again: both neighbors are now store hits.
            pf.observe(spec)
            assert pf.drain(timeout_s=30.0)
            deadline = time.monotonic() + 5.0
            while pf.stats()["skipped"] < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            second = pf.stats()
            assert second["skipped"] == 2
            assert second["stored"] == first["stored"]
        finally:
            pf.close()

    def test_solver_failures_count_errors_not_crashes(self, store, monkeypatch):
        def boom(item):
            raise RuntimeError("injected neighbor failure")

        monkeypatch.setattr("repro.serve.prefetch._solve_task", boom)
        pf = Prefetcher(store, cap=16)
        try:
            pf.observe(_spec(n_max=8))
            deadline = time.monotonic() + 10.0
            while pf.stats()["errors"] < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            stats = pf.stats()
            assert stats["errors"] == 2
            assert stats["stored"] == 0
            assert len(store) == 0
        finally:
            pf.close()

    def test_idle_gate_blocks_solving_until_released(self, store):
        gate = {"idle": False}
        pf = Prefetcher(store, idle=lambda: gate["idle"], cap=16)
        try:
            pf.observe(_spec(n_max=8))
            time.sleep(0.1)
            assert pf.stats()["stored"] == 0, "solved while foreground was busy"
            gate["idle"] = True
            deadline = time.monotonic() + 30.0
            while pf.stats()["stored"] < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pf.stats()["stored"] == 2
        finally:
            pf.close()


class TestServerIntegration:
    def test_misses_warm_the_store_and_surface_in_health(self, tmp_path):
        with serve_in_thread(
            store_dir=str(tmp_path / "store"), prefetch=True, prefetch_cap=16
        ) as srv:
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="log", n_max=8)
                assert srv.server.prefetcher is not None
                assert srv.server.prefetcher.drain(timeout_s=30.0)
                deadline = time.monotonic() + 10.0
                while (
                    srv.server.prefetcher.stats()["stored"] < 2
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                health = client.healthz()
                assert health["prefetch"]["stored"] == 2
                assert health["prefetch"]["errors"] == 0
                # 1 foreground artifact + 2 prefetched neighbors (7 and 9).
                assert health["store"]["entries"] == 3
                metrics = client.metrics_text()
                assert "repro_prefetch_stored_total" in metrics
                assert "repro_serve_solve_cache_hits" in metrics

    def test_prefetch_off_means_no_prefetcher(self, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "store")) as srv:
            assert srv.server.prefetcher is None
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="log", n_max=8)
                assert client.healthz()["prefetch"] is None
