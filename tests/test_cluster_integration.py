"""Whole-cluster behaviour: routing, aggregation, chaos, backfill.

One module-scoped :class:`~repro.cluster.router.LocalCluster` (3 shards,
subprocess workers, real front socket) serves every test here — spawning
a fleet per test would dominate the suite's wall clock.  Tests that
perturb the fleet (chaos, backfill) run last and restore it via
``wait_all_alive`` before yielding to the next.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cluster import LocalCluster
from repro.serve import ServeClient
from repro.serve.protocol import parse_solve_spec

SHARDS = 3


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-store")
    with LocalCluster(shards=SHARDS, store_root=root) as lc:
        yield lc


def _client(cluster: LocalCluster, **kwargs) -> ServeClient:
    return ServeClient(host=cluster.host, port=cluster.port, **kwargs)


def _solve_digest(n_max: int) -> str:
    return parse_solve_spec({"benchmark": "log", "n_max": n_max}).canonical_digest()


class TestRouting:
    def test_front_healthz_reports_fleet(self, cluster):
        with _client(cluster) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "cluster-front"
        assert health["shards"] == SHARDS
        assert sorted(health["alive_shards"]) == list(range(SHARDS))

    def test_solves_land_on_their_ring_owner(self, cluster):
        """Digest routing is observable on disk: after a solve through the
        front, the artifact exists in the *owner's* shard directory."""
        with _client(cluster) as client:
            for n_max in range(4, 10):
                client.solve(benchmark="log", n_max=n_max)
        deadline = time.monotonic() + 10.0
        missing = dict.fromkeys(range(4, 10))
        while missing and time.monotonic() < deadline:
            for n_max in list(missing):
                digest = _solve_digest(n_max)
                owner = cluster.supervisor.ring.owner(digest)
                path = cluster.supervisor.shard_dir(owner) / f"{digest}.json"
                if path.is_file():
                    del missing[n_max]
            time.sleep(0.05)
        assert not missing, f"owner artifacts never appeared for n_max={list(missing)}"

    def test_duplicate_requests_are_identical_across_clients(self, cluster):
        results = []
        errors = []

        def hammer():
            try:
                with _client(cluster) as client:
                    results.append(client.solve(benchmark="se", n_max=6))
            except Exception as exc:  # pragma: no cover - failing is the test
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        reference = json.dumps(results[0], sort_keys=True)
        assert all(json.dumps(r, sort_keys=True) == reference for r in results)

    def test_simulate_agrees_with_solve(self, cluster):
        with _client(cluster) as client:
            solved = client.solve(benchmark="log", n_max=5)
            simulated = client.simulate(
                shape=[24, 24], benchmark="log", n_max=5, limit=16
            )
        assert simulated["solution"] == solved["solution"]
        assert simulated["report"]["measured_ii"] >= 1


class TestObservability:
    def test_metrics_aggregate_worker_shadows_and_front_counters(self, cluster):
        with _client(cluster) as client:
            client.solve(benchmark="log", n_max=4)  # ensure routed traffic
            text = client.metrics_text()
        # Worker registries merge in under per-shard shadow prefixes.
        assert "worker_0" in text
        # The front's own routing counters merge in unprefixed.
        assert "cluster_routed" in text or "cluster_requests" in text

    def test_debug_cluster_shape(self, cluster):
        with _client(cluster) as client:
            client.solve(benchmark="log", n_max=4)
            doc = client._json("GET", "/debug/cluster")
        assert doc["shards"] == SHARDS
        assert len(doc["workers"]) == SHARDS
        for worker in doc["workers"]:
            assert worker["alive"] is True
            assert isinstance(worker["pid"], int)
            assert worker["store"] is not None
        assert doc["front"]["port"] == cluster.port
        routed = sum(w["routed"] for w in doc["workers"])
        assert routed >= 1
        assert any(
            name.startswith("cluster.") for name in doc["front"]["counters"]
        )


class TestChaos:
    def test_kill_owner_midstream_loses_nothing(self, cluster):
        """SIGKILL the shard owning a hot key while a retrying client hammers
        it: every request succeeds (via failover then respawn) and every
        response matches the pre-chaos answer bit for bit."""
        digest = _solve_digest(8)
        with _client(cluster) as client:
            reference = client.solve(benchmark="log", n_max=8)
        victim = cluster.supervisor.preference(digest)[0]
        before = cluster.supervisor.describe()["workers"][victim]["restarts"]

        results = []
        errors = []

        def hammer():
            try:
                with _client(cluster, retries=10, backoff_s=0.05) as client:
                    for _ in range(5):
                        results.append(client.solve(benchmark="log", n_max=8))
            except Exception as exc:  # pragma: no cover - failing is the test
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        cluster.supervisor.kill(victim)
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, f"requests lost during dead window: {errors[:3]}"
        assert len(results) == 15
        reference_json = json.dumps(reference, sort_keys=True)
        assert all(
            json.dumps(r, sort_keys=True) == reference_json for r in results
        )
        # The monitor notices the death asynchronously; wait for the respawn
        # rather than racing it (the warm solves above finish in milliseconds).
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            after = cluster.supervisor.describe()["workers"][victim]["restarts"]
            if after == before + 1:
                break
            time.sleep(0.05)
        assert after == before + 1
        assert cluster.supervisor.wait_all_alive(timeout_s=30.0)

    def test_backfill_is_idempotent(self, cluster):
        """Re-running backfill copies nothing new and perturbs no bytes."""
        assert cluster.supervisor.wait_all_alive(timeout_s=30.0)
        target = 0
        first = cluster.supervisor.backfill(target)
        snapshot = {
            p.name: p.read_bytes()
            for p in cluster.supervisor.shard_dir(target).glob("*.json")
        }
        second = cluster.supervisor.backfill(target)
        assert second["copied"] == 0
        assert second["errors"] == 0
        assert first["errors"] == 0
        after = {
            p.name: p.read_bytes()
            for p in cluster.supervisor.shard_dir(target).glob("*.json")
        }
        assert after == snapshot
