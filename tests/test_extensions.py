"""Tests for the paper's extension features.

* Bank bandwidth B > 1 (Section 3: "combining B banks together") —
  :func:`widen_solution`.
* Joint multi-pattern partitioning — :func:`solve_joint`.
* Innermost-loop unrolling in the HLS scheduler.
"""

import numpy as np
import pytest

from repro.core import (
    BankMapping,
    partition,
    solve_joint,
    widen_solution,
)
from repro.errors import InfeasibleConstraintError
from repro.hls import log_kernel_nest, schedule_nest
from repro.hw import BankedMemory
from repro.patterns import log_pattern, se_pattern
from repro.sim import simulate_sweep


class TestWideBanks:
    def test_paper_example_13_to_7(self):
        """Case study closing remark: bandwidth 2 folds 13 banks into 7."""
        wide = widen_solution(partition(log_pattern()), 2)
        assert wide.n_banks == 7
        assert wide.bank_ports == 2
        assert wide.delta_ii == 0
        assert wide.scheme == "wide"

    def test_bandwidth_one_is_identity(self):
        solution = partition(log_pattern())
        assert widen_solution(solution, 1) is solution

    def test_each_wide_bank_gets_at_most_b_elements(self):
        for bandwidth in (2, 3, 4):
            wide = widen_solution(partition(log_pattern()), bandwidth)
            banks = wide.bank_indices()
            worst = max(banks.count(b) for b in set(banks))
            assert worst <= bandwidth, bandwidth

    def test_mapping_bijective(self):
        for bandwidth in (2, 3):
            wide = widen_solution(partition(log_pattern()), bandwidth)
            mapping = BankMapping(solution=wide, shape=(8, 20))
            assert mapping.verify_bijective(), bandwidth

    def test_total_storage_preserved(self):
        base = partition(log_pattern())
        direct = BankMapping(solution=base, shape=(8, 20))
        wide = BankMapping(solution=widen_solution(base, 2), shape=(8, 20))
        assert wide.total_bank_elements == direct.total_bank_elements

    def test_simulated_single_cycle_with_dual_ports(self):
        wide = widen_solution(partition(log_pattern()), 2)
        mapping = BankMapping(solution=wide, shape=(10, 20))
        report = simulate_sweep(mapping)  # ports come from bank_ports
        assert report.worst_cycles == 1

    def test_single_ported_hardware_would_conflict(self):
        """The bandwidth requirement is real: memory built with fewer ports
        than the solution demands cannot exist through the public API, so
        check the underlying arbitration directly."""
        wide = widen_solution(partition(log_pattern()), 2)
        mapping = BankMapping(solution=wide, shape=(10, 20))
        memory = BankedMemory(mapping=mapping)
        assert memory.ports_per_bank == 2  # auto-raised to the requirement

    def test_validation(self):
        solution = partition(log_pattern())
        with pytest.raises(ValueError):
            widen_solution(solution, 0)
        with pytest.raises(ValueError):
            widen_solution(widen_solution(solution, 2), 2)

    def test_dump_roundtrip(self):
        wide = widen_solution(partition(se_pattern()), 2)
        mapping = BankMapping(solution=wide, shape=(6, 11))
        memory = BankedMemory(mapping=mapping)
        data = np.arange(66, dtype=np.int64).reshape(6, 11)
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)


class TestJointPartitioning:
    def test_union_covers_both(self):
        reader = se_pattern()
        shifted = se_pattern().translated((0, 1))
        result = solve_joint([reader, shifted])
        solution = result.solution
        # every element of each member pattern maps to a distinct bank
        for member in (reader, shifted):
            banks = [solution.bank_of(d) for d in member.offsets]
            assert len(set(banks)) == member.size

    def test_union_pattern_size(self):
        result = solve_joint([se_pattern(), se_pattern().translated((0, 1))])
        assert result.solution.pattern.size == 8  # 5 + 5 - 2 shared

    def test_single_pattern_degenerates_to_solve(self):
        joint = solve_joint([log_pattern()])
        plain = partition(log_pattern())
        assert joint.solution.n_banks == plain.n_banks

    def test_mapping_and_simulation(self):
        result = solve_joint(
            [se_pattern(), se_pattern().translated((1, 1))], shape=(10, 12)
        )
        assert result.mapping is not None
        assert result.mapping.verify_bijective()
        report = simulate_sweep(result.mapping)
        assert report.worst_cycles == 1

    def test_empty_rejected(self):
        with pytest.raises(InfeasibleConstraintError):
            solve_joint([])

    def test_constraint_respected(self):
        result = solve_joint(
            [log_pattern(), log_pattern().translated((0, 1))], n_max=10
        )
        assert result.solution.n_banks <= 10


class TestUnrolledScheduling:
    def test_unroll_preserves_ii_with_enough_banks(self):
        for factor in (1, 2, 4):
            schedule = schedule_nest(log_kernel_nest(), unroll=factor)
            assert schedule.ii == 1, factor

    def test_unroll_reduces_total_cycles(self):
        base = schedule_nest(log_kernel_nest())
        double = schedule_nest(log_kernel_nest(), unroll=2)
        assert double.total_cycles < base.total_cycles * 0.6

    def test_unroll_needs_more_banks(self):
        base = schedule_nest(log_kernel_nest())
        double = schedule_nest(log_kernel_nest(), unroll=2)
        assert double.total_banks > base.total_banks

    def test_unroll_under_bank_limit_costs_cycles(self):
        constrained = schedule_nest(log_kernel_nest(), unroll=2, n_max=13)
        assert constrained.ii >= 2  # 21 reads through <= 13 banks

    def test_unrolled_solution_simulates_correctly(self):
        schedule = schedule_nest(log_kernel_nest(), unroll=2)
        solution = schedule.solution_for("X")
        mapping = BankMapping(solution=solution, shape=(12, 24))
        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1

    def test_bad_factor(self):
        from repro.errors import HLSError

        with pytest.raises(HLSError):
            schedule_nest(log_kernel_nest(), unroll=0)

    def test_iterations_rounding(self):
        schedule = schedule_nest(log_kernel_nest(), unroll=7)
        trips = log_kernel_nest().trip_count
        assert schedule.iterations == -(-trips // 7)
