"""Extended property-based tests covering the newer subsystems.

Hypothesis drives the packed mapping, the wide-bank fold, serialization,
and the vectorized fast path with random patterns and shapes, asserting
each stays consistent with the reference scalar implementations.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BankMapping,
    Pattern,
    packed_mapping,
    partition,
    widen_solution,
)
from repro.core.vectorized import (
    element_grid,
    verify_bijective_bulk,
    verify_bulk_matches_scalar,
)
from repro.io import solution_from_dict, solution_to_dict


@st.composite
def small_patterns(draw, max_extent: int = 4, max_size: int = 7):
    coordinate = st.integers(min_value=0, max_value=max_extent)
    offset = st.tuples(coordinate, coordinate)
    offsets = draw(st.sets(offset, min_size=1, max_size=max_size))
    return Pattern(offsets).normalized()


@st.composite
def mapping_cases(draw):
    pattern = draw(small_patterns())
    extents = pattern.extents
    w0 = draw(st.integers(max(extents[0], 2), 8))
    w1 = draw(st.integers(max(extents[1], 2), 26))
    return pattern, (w0, w1)


# -- packed mapping --------------------------------------------------------


@given(mapping_cases())
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_packed_mapping_zero_overhead_and_bijective(case):
    pattern, shape = case
    mapping = packed_mapping(partition(pattern), shape)
    assert mapping.overhead_elements == 0
    assert mapping.verify_bijective()


@given(mapping_cases())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_packed_and_padded_share_bank_assignment(case):
    pattern, shape = case
    solution = partition(pattern)
    padded = BankMapping(solution=solution, shape=shape)
    packed = packed_mapping(solution, shape)
    for element in padded.iter_elements():
        assert padded.bank_of(element) == packed.bank_of(element)


# -- wide banks ------------------------------------------------------------------


@given(small_patterns(), st.integers(2, 5))
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_wide_fold_load_bounded_by_bandwidth(pattern, bandwidth):
    wide = widen_solution(partition(pattern), bandwidth)
    banks = wide.bank_indices()
    worst = max(banks.count(b) for b in set(banks))
    assert worst <= bandwidth


@given(mapping_cases(), st.integers(2, 4))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_wide_mapping_bijective(case, bandwidth):
    pattern, shape = case
    wide = widen_solution(partition(pattern), bandwidth)
    mapping = BankMapping(solution=wide, shape=shape)
    assert mapping.verify_bijective()


# -- serialization ----------------------------------------------------------------


@given(small_patterns(), st.integers(0, 1))
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_solution_roundtrip_any_pattern(pattern, constrain):
    n_max = max(2, pattern.size - 1) if constrain else None
    original = partition(pattern, n_max=n_max)
    restored = solution_from_dict(solution_to_dict(original))
    assert restored == original
    for delta in pattern.offsets:
        assert restored.bank_of(delta) == original.bank_of(delta)


# -- vectorized path -----------------------------------------------------------------


@given(mapping_cases())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bulk_path_matches_scalar_everywhere(case):
    pattern, shape = case
    mapping = BankMapping(solution=partition(pattern), shape=shape)
    assert verify_bulk_matches_scalar(mapping, sample=10_000)
    assert verify_bijective_bulk(mapping)


@given(mapping_cases())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bulk_path_matches_scalar_packed(case):
    pattern, shape = case
    mapping = packed_mapping(partition(pattern), shape)
    assert verify_bulk_matches_scalar(mapping, sample=10_000)


@given(st.tuples(st.integers(1, 5), st.integers(1, 5)))
def test_element_grid_is_complete(shape):
    grid = element_grid(shape)
    assert len(grid) == shape[0] * shape[1]
    assert len({tuple(row) for row in grid}) == len(grid)
