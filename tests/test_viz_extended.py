"""Tests for the utilization / heatmap visualizations."""

import numpy as np
import pytest

from repro.core import BankMapping, partition
from repro.hw import BankedMemory
from repro.patterns import se_pattern
from repro.viz import render_access_heatmap, render_utilization


class TestUtilizationBars:
    def test_full_and_half(self):
        art = render_utilization({0: 1.0, 1: 0.5}, width=10)
        lines = art.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert "100.0%" in lines[0]

    def test_sorted_by_bank(self):
        art = render_utilization({2: 0.1, 0: 0.2, 1: 0.3}, width=4)
        banks = [int(line.split()[1]) for line in art.splitlines()]
        assert banks == [0, 1, 2]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_utilization({0: 1.0}, width=0)

    def test_real_memory_utilization(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(6, 7))
        memory = BankedMemory(mapping=mapping)
        memory.load_array(np.ones((6, 7), dtype=np.int64))
        art = render_utilization(memory.utilization())
        assert art.count("bank") == 5


class TestAccessHeatmap:
    def test_peak_normalized(self):
        art = render_access_heatmap([10, 5, 0], width=10)
        lines = art.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert lines[2].count("█") == 0

    def test_empty_counts(self):
        assert render_access_heatmap([], width=10) == ""

    def test_all_zero(self):
        art = render_access_heatmap([0, 0], width=10)
        assert "█" not in art

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_access_heatmap([1], width=0)
