"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro import native
from repro.core import Pattern, partition, solve_cache
from repro.patterns import (
    canny_pattern,
    gaussian_pattern,
    log_pattern,
    median_pattern,
    prewitt_pattern,
    se_pattern,
    sobel3d_pattern,
)


@pytest.fixture(autouse=True)
def _clean_solve_cache():
    """Isolate every test from memoized solutions (and their counters).

    Span- and op-count assertions would otherwise depend on whether an
    earlier test already solved the same pattern.
    """
    solve_cache.clear()
    yield
    solve_cache.clear()


#: Shown by ``pytest -rs`` whenever the native engine rows are skipped, so
#: a run without the extension is visibly a two-engine run, never a silent
#: loss of coverage.
import os as _os

NATIVE_SKIP_REASON = (
    "native extension disabled via REPRO_NATIVE=0"
    if _os.environ.get("REPRO_NATIVE", "").strip() == "0"
    else "native extension not built (make build-ext)"
)


def engine_param(name: str):
    """An engine name as a pytest param; ``native`` skips when not built.

    The single source of truth for the dual/tri-engine test matrix: every
    engine-equivalence test parametrizes over these instead of hard-coding
    engine pairs, so the compiled tier joins (or cleanly leaves) the matrix
    in one place.
    """
    if name == "native":
        return pytest.param(
            name,
            marks=pytest.mark.skipif(
                not native.available(), reason=NATIVE_SKIP_REASON
            ),
        )
    return pytest.param(name)


@pytest.fixture(params=[engine_param("vectorized"), engine_param("native")])
def fast_engine(request) -> str:
    """Each batched sweep/search engine, to compare against ``scalar``."""
    return request.param


@pytest.fixture(
    params=[
        engine_param("scalar"),
        engine_param("vectorized"),
        engine_param("native"),
    ]
)
def sim_engine(request) -> str:
    """Every concrete engine name (for shared validation behaviour)."""
    return request.param


@pytest.fixture(scope="session")
def fast_engines() -> list:
    """Names of the available batched engines (for in-test loops where a
    parametrized fixture would clash with Hypothesis's function-scoped
    fixture health check)."""
    names = ["vectorized"]
    if native.available():
        names.append("native")
    return names


@pytest.fixture
def log_p() -> Pattern:
    return log_pattern()


@pytest.fixture
def se_p() -> Pattern:
    return se_pattern()


@pytest.fixture
def all_2d_benchmarks():
    """The 2-D Table 1 patterns (name, pattern)."""
    return [
        ("log", log_pattern()),
        ("canny", canny_pattern()),
        ("prewitt", prewitt_pattern()),
        ("se", se_pattern()),
        ("median", median_pattern()),
        ("gaussian", gaussian_pattern()),
    ]


@pytest.fixture
def all_benchmarks(all_2d_benchmarks):
    """All seven Table 1 patterns."""
    return all_2d_benchmarks + [("sobel3d", sobel3d_pattern())]


@pytest.fixture
def log_solution():
    return partition(log_pattern())


@pytest.fixture
def small_shape():
    """An array just big enough for the 5x5 patterns, cheap to enumerate."""
    return (12, 14)
