"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import Pattern, partition, solve_cache
from repro.patterns import (
    canny_pattern,
    gaussian_pattern,
    log_pattern,
    median_pattern,
    prewitt_pattern,
    se_pattern,
    sobel3d_pattern,
)


@pytest.fixture(autouse=True)
def _clean_solve_cache():
    """Isolate every test from memoized solutions (and their counters).

    Span- and op-count assertions would otherwise depend on whether an
    earlier test already solved the same pattern.
    """
    solve_cache.clear()
    yield
    solve_cache.clear()


@pytest.fixture
def log_p() -> Pattern:
    return log_pattern()


@pytest.fixture
def se_p() -> Pattern:
    return se_pattern()


@pytest.fixture
def all_2d_benchmarks():
    """The 2-D Table 1 patterns (name, pattern)."""
    return [
        ("log", log_pattern()),
        ("canny", canny_pattern()),
        ("prewitt", prewitt_pattern()),
        ("se", se_pattern()),
        ("median", median_pattern()),
        ("gaussian", gaussian_pattern()),
    ]


@pytest.fixture
def all_benchmarks(all_2d_benchmarks):
    """All seven Table 1 patterns."""
    return all_2d_benchmarks + [("sobel3d", sobel3d_pattern())]


@pytest.fixture
def log_solution():
    return partition(log_pattern())


@pytest.fixture
def small_shape():
    """An array just big enough for the 5x5 patterns, cheap to enumerate."""
    return (12, 14)
