"""Tests for the observability layer: tracer, metrics, attribution, export."""

import json
import threading

import pytest

from repro import obs
from repro.core import BankMapping, OpCounter, partition, solve
from repro.eval.metrics import AlgorithmRun, run_ours
from repro.obs.conflicts import ConflictTable, failed_claims
from repro.obs.report import render_conflict_report, render_span_tree
from repro.patterns import log_pattern, se_pattern
from repro.sim import simulate_sweep


@pytest.fixture
def telemetry():
    """Enable observability for one test, leaving a clean disabled state."""
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture(autouse=True)
def _clean_registry():
    """Keep the process-global registry/tracer isolated between tests."""
    obs.reset()
    yield
    obs.reset()


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        obs.disable()
        handle = obs.span("should.not.record")
        assert handle is obs.NULL_SPAN
        with handle:
            pass
        assert obs.tracer().records() == []

    def test_nesting_parents(self, telemetry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        records = {r.name: r for r in obs.tracer().records()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None
        assert records["outer"].duration_ms >= records["inner"].duration_ms

    def test_ops_delta_capture(self, telemetry):
        ops = OpCounter()
        ops.add(5)  # charged before the span: must not be attributed to it
        with obs.span("work", ops=ops):
            ops.mul(3)
        (record,) = obs.tracer().records()
        assert record.ops == 3

    def test_annotate_and_attrs(self, telemetry):
        with obs.span("labelled", phase="x") as live:
            live.annotate(n_f=13)
        (record,) = obs.tracer().records()
        assert record.attrs == {"phase": "x", "n_f": 13}

    def test_thread_local_nesting(self, telemetry):
        def worker(tag):
            with obs.span(f"{tag}.outer"):
                with obs.span(f"{tag}.inner"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = {r.name: r for r in obs.tracer().records()}
        assert len(records) == 4
        for tag in ("a", "b"):
            assert (
                records[f"{tag}.inner"].parent_id
                == records[f"{tag}.outer"].span_id
            )

    def test_solver_spans_cover_phases(self, telemetry):
        partition(log_pattern(), n_max=10)
        names = [r.name for r in obs.tracer().records()]
        for expected in (
            "solve.transform",
            "solve.qset_build",
            "solve.select_n",
            "solve.minimize_nf",
            "solve.bank_limit_sweep",
            "solve.partition",
        ):
            assert expected in names, names


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = obs.registry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_percentiles(self):
        hist = obs.registry().histogram("h")
        for v in range(1, 101):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == 50
        assert summary["p95"] == 95
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_empty_histogram_summary(self):
        summary = obs.registry().histogram("empty").summary()
        assert summary == {
            "count": 0, "sum": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0
        }

    def test_tracked_op_counter_mirrors_registry(self):
        reg = obs.registry()
        ops = reg.op_counter("x.ops")
        ops.add(2)
        ops.mod()
        assert ops.total == 3  # still a real OpCounter
        snap = reg.snapshot()["counters"]
        assert snap["x.ops.add"] == 2
        assert snap["x.ops.mod"] == 1
        assert snap["x.ops.total"] == 3

    def test_absorb_ops(self):
        ops = OpCounter()
        ops.mul(7)
        ops.compare(2)
        obs.registry().absorb_ops("alg.ops", ops)
        snap = obs.registry().snapshot()["counters"]
        assert snap["alg.ops.mul"] == 7
        assert snap["alg.ops.compare"] == 2
        assert snap["alg.ops.total"] == 9

    def test_tracked_counter_works_as_solver_ops(self):
        ops = obs.registry().op_counter("solve.test.ops")
        solution = partition(log_pattern(), ops=ops)
        assert solution.n_banks == 13
        snap = obs.registry().snapshot()["counters"]
        assert snap["solve.test.ops.total"] == ops.total > 0


class TestConflictAttribution:
    def test_failed_claims_formula(self):
        assert failed_claims(1, 1) == 0
        assert failed_claims(3, 1) == 3  # 2 + 1
        assert failed_claims(4, 2) == 2  # cycle 1 loses 2, cycle 2 loses 0
        assert failed_claims(5, 2) == 4  # 3 + 1
        with pytest.raises(ValueError):
            failed_claims(3, 0)

    def test_sweep_attribution_matches_report(self):
        solution = partition(log_pattern(), n_max=10)
        mapping = BankMapping(solution=solution, shape=(12, 21))
        table = ConflictTable(ports_per_bank=1)
        report = simulate_sweep(mapping, conflicts=table)
        assert table.cycle_histogram == report.cycle_histogram
        assert table.total_cycles == report.total_cycles
        assert table.iterations == report.iterations
        assert table.verify_consistent()
        assert table.total_conflicts > 0
        # 13 reads on 7 banks: six banks take 2 accesses, one failed claim
        # each, every iteration.
        assert table.total_conflicts == 6 * report.iterations

    def test_conflict_free_sweep_is_empty(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 9))
        table = ConflictTable(ports_per_bank=1)
        simulate_sweep(mapping, conflicts=table)
        assert table.per_bank == {}
        assert table.pair_counts == {}
        assert table.verify_consistent()

    def test_port_mismatch_rejected(self):
        from repro.errors import SimulationError

        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 9))
        with pytest.raises(SimulationError):
            simulate_sweep(mapping, ports_per_bank=2, conflicts=ConflictTable(1))

    def test_registry_mirrors_sweep(self, telemetry):
        solution = partition(log_pattern(), n_max=10)
        mapping = BankMapping(solution=solution, shape=(12, 21))
        report = simulate_sweep(mapping)
        snap = obs.registry().snapshot()
        assert snap["counters"]["sim.total_cycles"] == report.total_cycles
        assert snap["counters"]["sim.iterations"] == report.iterations
        hist = snap["histograms"]["sim.cycles_per_iteration"]
        assert hist["count"] == report.iterations
        bank_conflicts = sum(
            v for k, v in snap["counters"].items()
            if k.startswith("sim.bank.") and k.endswith(".conflicts")
        )
        assert bank_conflicts == 6 * report.iterations

    def test_to_dict_shape(self):
        table = ConflictTable(ports_per_bank=1)
        table.record_iteration([(0, 0), (0, 1), (1, 0)], [0, 0, 1], 2)
        payload = table.to_dict()
        assert payload["per_bank"] == {"0": 1}
        assert payload["cycle_histogram"] == {"2": 1}
        assert payload["pairs"] == [
            {"a": [0, 0], "b": [0, 1], "conflicts": 1}
        ]


class TestExport:
    def test_metrics_document_keys(self, telemetry):
        obs.registry().counter("k").inc()
        with obs.span("s"):
            pass
        doc = obs.metrics_document()
        assert set(doc) == {"schema", "counters", "gauges", "histograms", "spans"}
        assert doc["schema"] == obs.SCHEMA
        assert doc["counters"]["k"] == 1
        assert doc["spans"][0]["name"] == "s"

    def test_json_roundtrip_file(self, telemetry, tmp_path):
        obs.registry().gauge("g").set(1.25)
        path = tmp_path / "m.json"
        written = obs.write_metrics_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["gauges"]["g"] == 1.25

    def test_spans_jsonl(self, telemetry, tmp_path):
        with obs.span("a"):
            with obs.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        obs.write_spans_jsonl(str(path))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["name"] for l in lines] == ["b", "a"]
        assert all(l["type"] == "span" for l in lines)

    def test_csv_projection(self, tmp_path):
        obs.registry().counter("c").inc(3)
        obs.registry().histogram("h").observe(2.0)
        path = tmp_path / "m.csv"
        obs.write_metrics_csv(str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,c,value,3" in lines
        assert any(l.startswith("histogram,h,p95,") for l in lines)

    def test_attrs_coerced_json_friendly(self, telemetry):
        with obs.span("s", shape=(3, 4)):
            pass
        event = obs.tracer().records()[0].to_dict()
        json.dumps(event)  # must not raise
        assert event["attrs"]["shape"] == "(3, 4)"


class TestReports:
    def test_render_span_tree(self, telemetry):
        with obs.span("root"):
            with obs.span("child"):
                pass
        tree = render_span_tree(obs.tracer().records())
        assert "root" in tree and "└─ child" in tree
        root_line, child_line = tree.splitlines()
        assert root_line.index("root") < child_line.index("child")

    def test_render_span_tree_empty(self):
        assert "no spans" in render_span_tree([])

    def test_render_conflict_report(self):
        table = ConflictTable(1)
        table.record_iteration([(0, 0), (0, 1)], [3, 3], 2)
        table.observed_bank_conflicts = {0: 0, 1: 0, 2: 0, 3: 1}
        text = render_conflict_report(table, n_banks=5)
        assert "bank   3" in text and "bank   4" in text  # zero row padded in
        assert "(0, 0) <-> (0, 1): 1" in text
        assert "consistent" in text


class TestEvalRouting:
    def test_run_ours_publishes_registry(self):
        run = run_ours(log_pattern(), repetitions=1)
        snap = obs.registry().snapshot()
        assert snap["gauges"]["eval.log.ours.n_banks"] == run.n_banks == 13
        assert snap["gauges"]["eval.log.ours.operations"] == run.operations
        assert snap["gauges"]["eval.log.ours.time_ms"] == run.time_ms
        assert snap["counters"]["eval.log.ours.ops.total"] > 0
        assert snap["histograms"]["eval.solve_ms.ours"]["count"] == 1

    def test_algorithm_run_roundtrip(self):
        run = AlgorithmRun(algorithm="ours", n_banks=13, operations=92, time_ms=0.5)
        assert AlgorithmRun.from_dict(run.to_dict()) == run
        assert json.loads(json.dumps(run.to_dict())) == run.to_dict()


class TestCli:
    def test_profile_cli_avg2x2(self, capsys):
        from repro.eval.cli import main_profile

        assert main_profile(["avg2x2"]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "solve.minimize_nf" in out
        assert "sim.sweep_loop" in out
        assert "attribution totals vs simulation report: consistent" in out
        # main_profile enables obs as a side effect; restore the default.
        obs.disable()

    def test_profile_cli_constrained_conflicts(self, capsys):
        from repro.eval.cli import main_profile

        assert main_profile(["log", "--nmax", "8", "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "hottest pattern-offset pairs:" in out
        obs.disable()

    def test_profile_cli_unknown_pattern(self):
        from repro.eval.cli import main_profile

        with pytest.raises(SystemExit):
            main_profile(["nonsense!!"])
        obs.disable()

    def test_emit_metrics_table1(self, tmp_path, capsys):
        from repro.eval.cli import main_table1

        path = tmp_path / "metrics.json"
        rc = main_table1(
            [
                "--benchmarks", "median",
                "--repetitions", "1",
                "--no-paper",
                "--emit-metrics", str(path),
            ]
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        for key in ("schema", "counters", "gauges", "histograms", "spans"):
            assert key in doc
        assert doc["gauges"]["eval.median.ours.n_banks"] == 8

    def test_emit_metrics_csv(self, tmp_path):
        from repro.eval.cli import main_casestudy

        path = tmp_path / "metrics.csv"
        assert main_casestudy(["--emit-metrics", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert any(l.startswith("counter,eval.casestudy.ours.ops.total,") for l in lines)


class TestPrometheusExport:
    """The ``/metrics`` text format: what a stock Prometheus scraper reads."""

    def _fresh(self):
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry()

    def test_empty_registry_renders_empty(self):
        assert obs.to_prometheus_text(self._fresh()) == ""

    def test_counter_convention(self):
        reg = self._fresh()
        reg.counter("solve.cache.hits").inc(3)
        text = obs.to_prometheus_text(reg)
        assert "# TYPE repro_solve_cache_hits_total counter" in text
        assert "repro_solve_cache_hits_total 3" in text

    def test_gauge_and_name_sanitization(self):
        reg = self._fresh()
        reg.gauge("eval.log.ours.n-banks").set(13)
        text = obs.to_prometheus_text(reg)
        # Dots and dashes both fall outside the Prometheus grammar.
        assert "# TYPE repro_eval_log_ours_n_banks gauge" in text
        assert "repro_eval_log_ours_n_banks 13" in text

    def test_histogram_exports_as_summary_with_max(self):
        reg = self._fresh()
        for value in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("serve.latency_ms").observe(value)
        text = obs.to_prometheus_text(reg)
        assert "# TYPE repro_serve_latency_ms summary" in text
        assert 'repro_serve_latency_ms{quantile="0.5"}' in text
        assert 'repro_serve_latency_ms{quantile="0.95"}' in text
        assert "repro_serve_latency_ms_sum 10.0" in text
        assert "repro_serve_latency_ms_count 4" in text
        assert "# TYPE repro_serve_latency_ms_max gauge" in text
        assert "repro_serve_latency_ms_max 4.0" in text

    def test_text_ends_with_newline(self):
        reg = self._fresh()
        reg.counter("c").inc()
        assert obs.to_prometheus_text(reg).endswith("\n")

    def test_write_prometheus_file(self, tmp_path):
        reg = self._fresh()
        reg.counter("k").inc(2)
        path = tmp_path / "metrics.prom"
        obs.write_metrics_prometheus(str(path), reg)
        assert path.read_text() == "# TYPE repro_k_total counter\nrepro_k_total 2\n"

    def test_cli_emit_metrics_prom(self, tmp_path):
        from repro.eval.cli import main_table1

        path = tmp_path / "table1.prom"
        rc = main_table1(
            ["--benchmarks", "log", "--repetitions", "1", "--emit-metrics", str(path)]
        )
        assert rc == 0
        text = path.read_text()
        assert "# TYPE repro_eval_log_ours_n_banks gauge" in text
