"""Unit tests for repro.core.solver (Problem 1 objective orders)."""

import pytest

from repro.core import Objective, partition, solve
from repro.errors import InfeasibleConstraintError
from repro.patterns import log_pattern, se_pattern


class TestLatencyObjective:
    def test_unconstrained_matches_algorithm1(self):
        result = solve(log_pattern())
        assert result.objective_vector == (0, 13, 0)

    def test_constrained_picks_smallest_minimal_delta(self):
        result = solve(log_pattern(), n_max=10)
        assert result.solution.n_banks == 7  # tied candidates {7, 9}
        assert result.solution.delta_ii == 1

    def test_shape_materializes_mapping(self):
        result = solve(log_pattern(), shape=(12, 14))
        assert result.mapping is not None
        assert result.overhead_elements == result.mapping.overhead_elements

    def test_no_shape_no_mapping(self):
        result = solve(log_pattern())
        assert result.mapping is None
        assert result.overhead_elements == 0


class TestBanksObjective:
    def test_default_budget_zero_gives_nf(self):
        result = solve(log_pattern(), objective=Objective.BANKS)
        assert result.solution.n_banks == 13
        assert result.solution.delta_ii == 0

    def test_budget_one_allows_fewer_banks(self):
        result = solve(log_pattern(), objective=Objective.BANKS, delta_max=1)
        assert result.solution.n_banks == 7
        assert result.solution.delta_ii <= 1

    def test_budget_trades_banks_for_cycles(self):
        budgets = {}
        for delta_max in range(0, 13):
            result = solve(log_pattern(), objective=Objective.BANKS, delta_max=delta_max)
            budgets[delta_max] = result.solution.n_banks
        # monotone: looser budget can never need more banks
        values = [budgets[d] for d in sorted(budgets)]
        assert values == sorted(values, reverse=True)
        assert budgets[12] == 1  # a single bank serves with delta = m - 1

    def test_infeasible_budget(self):
        with pytest.raises(InfeasibleConstraintError):
            solve(log_pattern(), objective=Objective.BANKS, n_max=3, delta_max=1)

    def test_negative_budget_rejected(self):
        with pytest.raises(InfeasibleConstraintError):
            solve(log_pattern(), objective=Objective.BANKS, delta_max=-1)


class TestStorageObjective:
    def test_requires_shape(self):
        with pytest.raises(InfeasibleConstraintError):
            solve(log_pattern(), objective=Objective.STORAGE)

    def test_zero_overhead_guaranteed(self):
        result = solve(log_pattern(), shape=(64, 48), objective=Objective.STORAGE)
        assert result.overhead_elements == 0
        assert 48 % result.solution.n_banks == 0

    def test_minimizes_delta_among_divisors(self):
        # Divisors of 14 up to nmax=10: 1, 2, 7.  From the sweep row,
        # conflicts are 13, 9, 2 -> N = 7 wins with delta = 1.
        result = solve(
            log_pattern(), shape=(16, 14), n_max=10, objective=Objective.STORAGE
        )
        assert result.solution.n_banks == 7
        assert result.solution.delta_ii == 1
        assert result.overhead_elements == 0

    def test_nmax_filters_divisors(self):
        with pytest.raises(InfeasibleConstraintError):
            # 13 is prime; only divisor <= 5 is 1... 1 is allowed, so use a
            # ceiling of 0 to truly empty the candidate set.
            solve(log_pattern(), shape=(16, 13), n_max=0, objective=Objective.STORAGE)

    def test_prime_dimension_falls_back_to_single_bank(self):
        result = solve(log_pattern(), shape=(16, 13), n_max=5, objective=Objective.STORAGE)
        assert result.solution.n_banks == 1
        assert result.solution.delta_ii == log_pattern().size - 1


class TestConsistency:
    def test_latency_agrees_with_partition(self):
        via_solver = solve(log_pattern(), n_max=10).solution
        via_partition = partition(log_pattern(), n_max=10)
        assert via_solver.n_banks == via_partition.n_banks
        assert via_solver.delta_ii == via_partition.delta_ii

    def test_se_all_objectives_agree_when_unconstrained(self):
        for objective in (Objective.LATENCY, Objective.BANKS):
            result = solve(se_pattern(), objective=objective)
            assert result.solution.n_banks == 5

    def test_objective_vector_fields(self):
        result = solve(se_pattern(), shape=(10, 10))
        delta, banks, overhead = result.objective_vector
        assert (delta, banks, overhead) == (0, 5, 0)
