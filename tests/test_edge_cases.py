"""Edge-case coverage across the stack: degenerate and extreme inputs."""

import numpy as np
import pytest

from repro.core import (
    BankMapping,
    Pattern,
    derive_alpha,
    minimize_nf,
    partition,
    solve,
)
from repro.errors import MappingError
from repro.hw import BankedMemory
from repro.sim import golden_stencil, simulate_sweep


class TestOneDimensional:
    """n = 1: the formulas must degenerate gracefully."""

    def test_alpha_is_unit(self):
        assert derive_alpha(Pattern([(0,), (2,), (5,)])).alpha == (1,)

    def test_dense_line_full_flow(self):
        pattern = Pattern([(i,) for i in range(4)], name="line4")
        solution = partition(pattern)
        assert solution.n_banks == 4
        mapping = BankMapping(solution=solution, shape=(18,))
        assert mapping.verify_bijective()
        report = simulate_sweep(mapping)
        assert report.worst_cycles == 1

    def test_sparse_line(self):
        # taps {0, 3, 7}: diffs {3, 4, 7} -> N=3 rejected (3), N=4 rejected
        # (4), N=5 ok (5, 10 not in diffs)
        pattern = Pattern([(0,), (3,), (7,)])
        n_f, _, _ = minimize_nf(pattern)
        assert n_f == 5

    def test_1d_memory_roundtrip(self):
        pattern = Pattern([(0,), (1,)])
        mapping = BankMapping(solution=partition(pattern), shape=(9,))
        memory = BankedMemory(mapping=mapping)
        data = np.arange(9, dtype=np.int64)
        memory.load_array(data)
        assert np.array_equal(memory.dump_array(), data)


class TestSingletonPattern:
    """m = 1: a single access needs one bank and never conflicts."""

    def test_partition(self):
        solution = partition(Pattern([(2, 3)]))
        assert solution.n_banks == 1
        assert solution.delta_ii == 0

    def test_mapping_is_identity_like(self):
        mapping = BankMapping(solution=partition(Pattern([(0, 0)])), shape=(4, 5))
        assert mapping.overhead_elements == 0
        assert mapping.verify_bijective()


class TestHighBankCounts:
    def test_pattern_larger_than_array_dim(self):
        """N_f can exceed w_{n-1}: K = 1 and every last-dim slice pads."""
        pattern = Pattern([(0, i) for i in range(6)])  # needs 6 banks
        mapping = BankMapping(solution=partition(pattern), shape=(3, 7))
        # ceil(7/6)*6 - 7 = 5 padded columns of 3
        assert mapping.overhead_elements == 15
        assert mapping.verify_bijective()

    def test_bank_count_exceeds_last_dim(self):
        pattern = Pattern([(i, 0) for i in range(5)])  # alpha = (1, 1)? no: D=(5,1), alpha=(1,1)
        solution = partition(pattern)
        mapping = BankMapping(solution=solution, shape=(6, 3))
        assert mapping.verify_bijective()


class TestAsymmetricPatterns:
    def test_l_shape(self):
        pattern = Pattern([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)], name="L")
        solution = partition(pattern)
        banks = solution.bank_indices()
        assert len(set(banks)) == 5

    def test_negative_offsets_partition_fine(self):
        centered = Pattern([(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)])
        solution = partition(centered)
        assert solution.n_banks == 5
        assert len(set(solution.bank_indices())) == 5

    def test_mapping_requires_nonnegative_elements(self):
        centered = Pattern([(-1, 0), (0, 0), (1, 0)])
        mapping = BankMapping(solution=partition(centered), shape=(8, 8))
        with pytest.raises(MappingError):
            mapping.bank_of((-1, 0))


class TestExtremeShapes:
    def test_width_one_dimensions(self):
        pattern = Pattern([(0, 0), (1, 0)])
        mapping = BankMapping(solution=partition(pattern), shape=(4, 1))
        assert mapping.verify_bijective()

    def test_minimal_array_for_pattern(self):
        """The array exactly the pattern's size still maps correctly."""
        from repro.patterns import se_pattern

        mapping = BankMapping(solution=partition(se_pattern()), shape=(3, 3))
        assert mapping.verify_bijective()

    def test_golden_on_exact_fit(self):
        from repro.patterns import kernel_for

        image = np.arange(9, dtype=np.int64).reshape(3, 3)
        out = golden_stencil(image, kernel_for("se"))
        assert out.shape == (1, 1)


class TestSolverEdges:
    def test_nmax_equal_one(self):
        solution = partition(Pattern([(0, 0), (0, 1)]), n_max=1)
        assert solution.n_banks == 1
        assert solution.delta_ii == 1

    def test_solve_singleton_storage(self):
        result = solve(Pattern([(0, 0)]), shape=(4, 4),)
        assert result.objective_vector == (0, 1, 0)

    def test_huge_nmax_is_harmless(self):
        from repro.patterns import log_pattern

        assert partition(log_pattern(), n_max=10_000).n_banks == 13
