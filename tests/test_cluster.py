"""The cluster building blocks: ring, map file, peer tiers, client retries.

Component-level coverage — the ring's placement algebra, the map file's
tolerance, and the tiered store path between two real in-process servers
sharing a hand-written cluster map.  Whole-cluster behaviour (subprocess
workers, the front router, chaos) lives in ``test_cluster_integration``.
"""

from __future__ import annotations

import importlib
import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterMap,
    HashRing,
    PeerFetcher,
    PeerReplicator,
    read_cluster_map,
    write_cluster_map,
)
from repro.serve import ServeClient, ServeError, ServerBusyError, serve_in_thread
from repro.serve.protocol import parse_solve_spec


def _digests(count: int) -> list:
    """Deterministic hex digests spread over the ring."""
    from repro.core.cache import stable_digest

    return [stable_digest(("ring-probe", i)) for i in range(count)]


class TestHashRing:
    def test_owner_is_deterministic(self):
        a = HashRing(range(4))
        b = HashRing([3, 1, 2, 0])  # order and type of ids must not matter
        for digest in _digests(50):
            assert a.owner(digest) == b.owner(digest)

    def test_preference_lists_every_shard_once(self):
        ring = HashRing(range(5))
        for digest in _digests(20):
            pref = ring.preference(digest)
            assert sorted(pref) == [0, 1, 2, 3, 4]
            assert pref[0] == ring.owner(digest)

    def test_removal_moves_only_the_dead_shards_keys(self):
        """The consistent-hashing contract: surviving placements are stable."""
        full = HashRing(range(4))
        without = HashRing([0, 1, 3])  # shard 2 died
        moved = 0
        for digest in _digests(200):
            old = full.owner(digest)
            new = without.owner(digest)
            if old == 2:
                moved += 1
                # Re-routed keys land on the old ring's next-preferred shard.
                survivors = [s for s in full.preference(digest) if s != 2]
                assert new == survivors[0]
            else:
                assert new == old
        assert moved > 0  # shard 2 owned something

    def test_alive_filter_keeps_preference_order(self):
        ring = HashRing(range(4))
        for digest in _digests(20):
            pref = ring.preference(digest)
            alive = ring.preference(digest, alive={1, 3})
            assert alive == [s for s in pref if s in (1, 3)]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(range(4))
        counts = {s: 0 for s in range(4)}
        for digest in _digests(400):
            counts[ring.owner(digest)] += 1
        for shard, count in counts.items():
            assert count > 400 * 0.05, f"shard {shard} owns almost nothing"

    def test_non_hex_digest_still_places(self):
        ring = HashRing(range(3))
        assert ring.owner("not-hex-at-all") in (0, 1, 2)

    def test_rejects_empty_shard_set(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestClusterMap:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "map.json"
        shards = {0: ("127.0.0.1", 1111), 1: ("127.0.0.1", 2222)}
        write_cluster_map(path, shards)
        assert read_cluster_map(path) == shards

    def test_missing_and_corrupt_files_read_empty(self, tmp_path):
        assert read_cluster_map(tmp_path / "absent.json") == {}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_cluster_map(bad) == {}

    def test_reader_tracks_rewrites(self, tmp_path):
        path = tmp_path / "map.json"
        write_cluster_map(path, {0: ("127.0.0.1", 1111)})
        cmap = ClusterMap(path)
        assert cmap.addr(0) == ("127.0.0.1", 1111)
        time.sleep(0.02)  # ensure a distinct mtime on coarse filesystems
        write_cluster_map(path, {0: ("127.0.0.1", 3333), 1: ("127.0.0.1", 4444)})
        assert cmap.addr(0) == ("127.0.0.1", 3333)
        assert cmap.addr(1) == ("127.0.0.1", 4444)

    def test_unknown_shard_raises(self, tmp_path):
        path = tmp_path / "map.json"
        write_cluster_map(path, {0: ("127.0.0.1", 1111)})
        with pytest.raises(KeyError):
            ClusterMap(path).addr(7)


@pytest.fixture()
def shard_pair(tmp_path):
    """Two real in-process servers acting as shards 0 and 1 of one map."""
    map_path = tmp_path / "map.json"
    map_path.write_text("{}")  # workers tolerate an empty map at boot
    servers = []
    for shard in (0, 1):
        servers.append(
            serve_in_thread(
                store_dir=str(tmp_path / f"shard-{shard}"),
                shard_id=shard,
                cluster_map=str(map_path),
            )
        )
    write_cluster_map(
        map_path, {i: ("127.0.0.1", srv.port) for i, srv in enumerate(servers)}
    )
    yield map_path, servers, tmp_path
    # Quiesce write-side replication before stopping either server — an
    # in-flight peer PUT racing a closing event loop is harmless but noisy
    # (a connection accepted at the instant of close is never handled).
    for srv in servers:
        if srv.server.replicator is not None:
            srv.server.replicator.drain()
    for srv in servers:
        srv.stop()


def _artifact(tmp_path: Path, shard: int, digest: str) -> Path:
    return tmp_path / f"shard-{shard}" / f"{digest}.json"


class TestTieredStore:
    def test_peer_fetch_serves_evicted_locally_but_warm_elsewhere(
        self, shard_pair, monkeypatch
    ):
        """Shard 1 misses memory and disk but must not re-solve: the key is
        warm on shard 0, one peer hop away."""
        map_path, (srv0, srv1), tmp_path = shard_pair
        spec = parse_solve_spec({"benchmark": "log", "n_max": 7})
        digest = spec.canonical_digest()

        with ServeClient(port=srv0.port) as client:
            reference = client.solve(benchmark="log", n_max=7)
        srv0.server.replicator.drain()  # quiesce write-side replication
        assert _artifact(tmp_path, 0, digest).is_file()
        # Shard 1 must answer without ever entering the solver.
        solver_mod = importlib.import_module("repro.core.solver")

        def boom(*_args, **_kwargs):  # pragma: no cover - failing is the test
            raise AssertionError("shard 1 re-solved a peer-warm key")

        monkeypatch.setattr(solver_mod, "_solve_impl", boom)
        from repro.core import solve_cache

        solve_cache.clear()  # memory tier must miss too
        # Evict the key from shard 1's local store (replication may have
        # already copied it there) — the cluster tier must now answer.
        srv1.server.store._discard(digest, _artifact(tmp_path, 1, digest))
        with ServeClient(port=srv1.port) as client:
            answer = client.solve(benchmark="log", n_max=7)
        assert answer["solution"] == reference["solution"]
        assert answer["key"] == reference["key"]

    def test_peer_fetch_replicates_byte_identically(self, shard_pair):
        map_path, (srv0, srv1), tmp_path = shard_pair
        spec = parse_solve_spec({"benchmark": "se", "n_max": 6})
        digest = spec.canonical_digest()
        with ServeClient(port=srv0.port) as client:
            client.solve(benchmark="se", n_max=6)
        from repro.core import solve_cache

        solve_cache.clear()
        with ServeClient(port=srv1.port) as client:
            client.solve(benchmark="se", n_max=6)
        a = _artifact(tmp_path, 0, digest)
        b = _artifact(tmp_path, 1, digest)
        assert a.is_file() and b.is_file()
        assert a.read_bytes() == b.read_bytes()

    def test_write_side_replication_copies_fresh_solves(self, shard_pair):
        """A fresh solve on one shard lands on its ring successor too."""
        map_path, (srv0, srv1), tmp_path = shard_pair
        spec = parse_solve_spec({"benchmark": "prewitt", "n_max": 5})
        digest = spec.canonical_digest()
        # With two shards and copies=2, the solving shard's replica target
        # is always the other shard, whoever owns the key.
        with ServeClient(port=srv0.port) as client:
            client.solve(benchmark="prewitt", n_max=5)
        assert srv0.server.replicator.drain(timeout_s=10.0)
        src = _artifact(tmp_path, 0, digest)
        dst = _artifact(tmp_path, 1, digest)
        assert src.is_file() and dst.is_file()
        assert src.read_bytes() == dst.read_bytes()

    def test_peer_put_is_idempotent(self, shard_pair):
        map_path, (srv0, srv1), tmp_path = shard_pair
        spec = parse_solve_spec({"benchmark": "log", "n_max": 5})
        digest = spec.canonical_digest()
        with ServeClient(port=srv0.port) as client:
            client.solve(benchmark="log", n_max=5)
            document = client.peer_solution(digest)
        assert document is not None
        with ServeClient(port=srv1.port) as client:
            first = client.peer_put(digest, document)
            before = _artifact(tmp_path, 1, digest).read_bytes()
            second = client.peer_put(digest, document)
            after = _artifact(tmp_path, 1, digest).read_bytes()
        assert first["stored"] == second["stored"] == digest
        assert first["entries"] == second["entries"]
        assert before == after == _artifact(tmp_path, 0, digest).read_bytes()

    def test_peer_digests_lists_the_shard_inventory(self, shard_pair):
        map_path, (srv0, _srv1), _tmp = shard_pair
        spec = parse_solve_spec({"benchmark": "log", "n_max": 9})
        with ServeClient(port=srv0.port) as client:
            client.solve(benchmark="log", n_max=9)
            digests = client.peer_digests()
        assert spec.canonical_digest() in digests

    def test_peer_fetch_skips_dead_peers(self, shard_pair):
        """A dead peer in the walk is an error counter, not a failure."""
        map_path, (srv0, srv1), tmp_path = shard_pair
        spec = parse_solve_spec({"benchmark": "log", "n_max": 8})
        digest = spec.canonical_digest()
        with ServeClient(port=srv0.port) as client:
            client.solve(benchmark="log", n_max=8)
        # A fetcher acting as a third shard: both peers in its walk, one dead.
        write_cluster_map(
            map_path,
            {
                0: ("127.0.0.1", srv0.port),
                1: ("127.0.0.1", 1),  # nothing listens on port 1
                2: ("127.0.0.1", 65000),
            },
        )
        fetcher = PeerFetcher(map_path, shard_id=2)
        try:
            document = fetcher.fetch_document(digest)
            assert document is not None and document["digest"] == digest
        finally:
            fetcher.close()

    def test_peer_endpoints_absent_on_plain_servers(self, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "plain")) as srv:
            with ServeClient(port=srv.port) as client:
                with pytest.raises(ServeError) as err:
                    client.peer_digests()
        assert err.value.http_status == 404


class _ScriptedHTTP:
    """A socket server answering one canned HTTP response per connection."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.hits = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self.hits < len(self.responses):
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                try:
                    conn.recv(65536)
                    conn.sendall(self.responses[self.hits])
                except OSError:
                    pass
                self.hits += 1

    def close(self):
        self._sock.close()

    def settled_hits(self, expect: int, timeout_s: float = 2.0) -> int:
        """hits, waiting briefly — the serve thread tallies after sendall."""
        deadline = time.monotonic() + timeout_s
        while self.hits < expect and time.monotonic() < deadline:
            time.sleep(0.005)
        return self.hits


def _http(status: str, body: dict, extra_headers: str = "") -> bytes:
    payload = json.dumps(body).encode()
    return (
        f"HTTP/1.1 {status}\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n{extra_headers}"
        "Connection: close\r\n\r\n"
    ).encode() + payload


class TestClientRetries:
    def test_retries_429_honoring_retry_after(self):
        busy = _http(
            "429 Too Many Requests",
            {"error": {"code": "queue_full", "message": "try later",
                       "retry_after_s": 0.01}},
            "Retry-After: 0.01\r\n",
        )
        ok = _http("200 OK", {"status": "ok"})
        server = _ScriptedHTTP([busy, busy, ok])
        try:
            with ServeClient(port=server.port, retries=3, backoff_s=0.01) as client:
                started = time.perf_counter()
                assert client.healthz() == {"status": "ok"}
                elapsed = time.perf_counter() - started
        finally:
            server.close()
        assert server.settled_hits(3) == 3
        assert elapsed < 5.0  # hints kept the backoff tiny

    def test_retries_zero_fails_fast(self):
        busy = _http(
            "429 Too Many Requests", {"error": {"code": "queue_full", "message": "no"}}
        )
        server = _ScriptedHTTP([busy, busy])
        try:
            with ServeClient(port=server.port) as client:  # retries=0 default
                with pytest.raises(ServerBusyError):
                    client.healthz()
        finally:
            server.close()
        assert server.settled_hits(1) == 1

    def test_exhausted_retries_surface_the_final_429(self):
        busy = _http(
            "429 Too Many Requests", {"error": {"code": "queue_full", "message": "no"}}
        )
        server = _ScriptedHTTP([busy] * 3)
        try:
            with ServeClient(port=server.port, retries=2, backoff_s=0.005) as client:
                with pytest.raises(ServerBusyError):
                    client.healthz()
        finally:
            server.close()
        assert server.settled_hits(3) == 3  # initial try + 2 retries

    def test_non_retryable_errors_never_retry(self):
        bad = _http(
            "400 Bad Request",
            {"error": {"code": "bad_request", "message": "nope"}},
        )
        server = _ScriptedHTTP([bad, bad])
        try:
            with ServeClient(port=server.port, retries=5, backoff_s=0.005) as client:
                with pytest.raises(ServeError) as err:
                    client.healthz()
        finally:
            server.close()
        assert err.value.http_status == 400
        assert server.settled_hits(1) == 1

    def test_invalid_retry_configuration_rejected(self):
        with pytest.raises(ValueError):
            ServeClient(retries=-1)
        with pytest.raises(ValueError):
            ServeClient(retries=1, backoff_s=-0.1)
