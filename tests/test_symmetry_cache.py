"""Symmetry quotient: orbit-invariant keys, warm hits bit-equal to cold solves.

Satellite of the canonicalization tentpole: these are the property tests
over the verify generator's strata — ``canonical_key(p) == canonical_key(T(p))``
for random compositions of translation, reflection, and leading-axis
permutation, and a symmetry-op cache hit that is field-for-field equal to
a cold solve of the very same variant.
"""

from __future__ import annotations

import dataclasses
import importlib

import pytest

from repro.core import solve, solve_cache
from repro.core.cache import (
    MAX_SYMMETRY_NDIM,
    SymmetryOp,
    canonical_key,
    canonicalize,
    solve_key,
)
from repro.core.pattern import Pattern
from repro.verify.gen import generate_case, symmetry_variants

#: Chiral 2-D pattern: no reflection or permutation maps it onto itself,
#: so every symmetry variant is a genuinely different offset set.
CORNER = Pattern(((0, 0), (0, 1), (1, 0)), name="corner")

#: Verify-strata cases the properties quantify over (all four strata).
CASE_INDICES = tuple(range(8))


@pytest.fixture()
def count_solves(monkeypatch):
    """Count calls into the real solver body (cache misses only)."""
    solver_mod = importlib.import_module("repro.core.solver")

    calls = {"n": 0}
    real = solver_mod._solve_impl

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(solver_mod, "_solve_impl", counting)
    return calls


def _strata_cases():
    """Pattern/shape/n_max triples drawn from the fuzz generator's strata."""
    for index in CASE_INDICES:
        case = generate_case(seed=20250808, index=index)
        yield Pattern(case.offsets), case.shape, case.n_max


def _key(pattern, shape, n_max):
    return canonical_key(pattern, shape, n_max, "latency", 0, mode="symmetry")


class TestCanonicalKeyOrbitInvariance:
    @pytest.mark.parametrize("kind", ["reflection", "permutation", "composed"])
    def test_variants_share_the_key_across_strata(self, kind):
        """``canonical_key(p) == canonical_key(T(p))`` for every T tried."""
        checked = 0
        for pattern, shape, n_max in _strata_cases():
            base = _key(pattern, shape, n_max)
            for tag, variant, v_shape in symmetry_variants(
                pattern, shape, kind, seed=3, count=4
            ):
                assert _key(variant, v_shape, n_max) == base, (tag, pattern)
                checked += 1
        # permutation yields nothing for the 2-D strata — but across 8
        # generated cases some must be >= 3-D, so the property is never
        # vacuous for any kind.
        assert checked > 0

    def test_random_composition_chain_is_key_stable(self):
        """Compositions of compositions stay on the same orbit key."""
        base = _key(CORNER, (16, 16), 8)
        frontier = [(CORNER, (16, 16))]
        for seed in range(4):
            nxt = []
            for pattern, shape in frontier:
                for _tag, variant, v_shape in symmetry_variants(
                    pattern, shape, "composed", seed=seed, count=2
                ):
                    assert _key(variant, v_shape, 8) == base
                    nxt.append((variant, v_shape))
            frontier = nxt[:3]  # keep the chain bounded but deep

    def test_translation_mode_still_splits_reflections(self):
        """The translation-only quotient must NOT merge chiral variants."""
        reflected = CORNER.reflected((0,)).normalized()
        assert reflected.offsets != CORNER.normalized().offsets
        sym = canonical_key(CORNER, (16, 16), 8, "latency", 0, mode="symmetry")
        assert canonical_key(reflected, (16, 16), 8, "latency", 0, mode="symmetry") == sym
        trans_a = canonical_key(CORNER, (16, 16), 8, "latency", 0, mode="translation")
        trans_b = canonical_key(reflected, (16, 16), 8, "latency", 0, mode="translation")
        assert trans_a != trans_b

    def test_canonical_key_never_collides_with_pinned_solve_key(self):
        """Distinct tag: the store's ``solve_key`` digests stay untouched."""
        assert _key(CORNER, (16, 16), 8) != solve_key(
            CORNER, (16, 16), 8, "latency", 0
        )

    def test_beyond_max_ndim_falls_back_to_translation(self):
        """5-D would cost ``4!·2^5`` candidates; the op must be identity."""
        offsets = ((0,) * 5, (1, 0, 1, 0, 1))
        assert len(offsets[0]) > MAX_SYMMETRY_NDIM
        canon, op = canonicalize(Pattern(offsets), mode="symmetry")
        assert op.is_identity
        assert canon.offsets == Pattern(offsets).normalized().offsets

    def test_canonicalize_is_deterministic_across_calls(self):
        first = canonicalize(CORNER, mode="symmetry")
        second = canonicalize(CORNER, mode="symmetry")
        assert first[0].offsets == second[0].offsets
        assert first[1] == second[1]


class TestWarmHitEqualsColdSolve:
    @staticmethod
    def _fields(solution):
        return {
            "offsets": solution.pattern.offsets,
            "name": solution.pattern.name,
            "alpha": solution.transform.alpha,
            "extents": solution.transform.extents,
            "n_banks": solution.n_banks,
            "n_unconstrained": solution.n_unconstrained,
            "delta_ii": solution.delta_ii,
            "scheme": solution.scheme,
            "algorithm": solution.algorithm,
        }

    @pytest.mark.parametrize("kind", ["reflection", "composed"])
    def test_symmetry_hit_is_field_for_field_a_cold_solve(
        self, kind, count_solves, monkeypatch
    ):
        """A hit through a non-identity op must be indistinguishable from
        a cold solve of the caller's own variant — same ``α`` signs, same
        axis order, same pattern identity, everything."""
        monkeypatch.setenv("REPRO_SOLVE_CANON", "symmetry")
        for pattern, shape, n_max in list(_strata_cases())[:4]:
            solve_cache.clear()
            solve(pattern, shape, n_max=n_max)
            base_calls = count_solves["n"]
            for tag, variant, v_shape in symmetry_variants(
                pattern, shape, kind, seed=11, count=2
            ):
                cold = solve(variant, v_shape, n_max=n_max, cache=False)
                calls_after_cold = count_solves["n"]
                warm = solve(variant, v_shape, n_max=n_max)
                # The warm call answered from cache: zero new solver runs.
                assert count_solves["n"] == calls_after_cold, tag
                assert self._fields(warm.solution) == self._fields(
                    cold.solution
                ), (tag, pattern)
            assert count_solves["n"] >= base_calls

    def test_reflected_request_hits_the_original_entry(self, count_solves):
        solve(CORNER, (16, 16), n_max=8)
        reflected = CORNER.reflected((0, 1)).normalized()
        result = solve(reflected, (16, 16), n_max=8)
        assert count_solves["n"] == 1
        assert result.solution.pattern.offsets == reflected.offsets
        # A reflected hit re-signs alpha; |alpha[-1]| must stay 1 (S4.4).
        assert abs(result.solution.transform.alpha[-1]) == 1

    def test_permuted_3d_request_hits_the_original_entry(self, count_solves):
        base = Pattern(((0, 0, 0), (0, 1, 0), (1, 1, 0), (0, 0, 1)), name="slab")
        solve(base, (6, 8, 10), n_max=8)
        permuted = base.permuted((1, 0, 2))
        result = solve(permuted, (8, 6, 10), n_max=8)
        assert count_solves["n"] == 1
        assert result.solution.pattern.offsets == permuted.offsets
        cold = solve(permuted, (8, 6, 10), n_max=8, cache=False)
        assert self.__class__._fields(result.solution) == self.__class__._fields(
            cold.solution
        )

    def test_hit_re_attaches_caller_name(self, count_solves):
        """Names ride along even when offsets coincide (the serve-tier leak)."""
        a = Pattern(CORNER.offsets, name="requester-a")
        b = Pattern(CORNER.offsets, name="requester-b")
        first = solve(a, (16, 16), n_max=8)
        second = solve(b, (16, 16), n_max=8)
        assert count_solves["n"] == 1
        assert first.solution.pattern.name == "requester-a"
        assert second.solution.pattern.name == "requester-b"


class TestSymmetryOpAlgebra:
    def test_identity_op_properties(self):
        op = SymmetryOp(perm=(0, 1), flips=(False, False))
        assert op.is_identity
        assert op.shape_to_canonical((4, 9)) == (4, 9)

    def test_shape_permutes_through_leading_axes(self):
        op = SymmetryOp(perm=(1, 0, 2), flips=(False, True, False))
        assert not op.is_identity
        assert op.shape_to_canonical((4, 9, 16)) == (9, 4, 16)
        # The innermost extent — the one solve keys depend on — is pinned.
        assert op.shape_to_canonical((4, 9, 16))[-1] == 16

    def test_mode_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CANON", "translation")
        _canon, op = canonicalize(CORNER.reflected((0,)), mode="symmetry")
        assert not op.is_identity
        _canon, op = canonicalize(CORNER.reflected((0,)))
        assert op.is_identity
