"""Tests for loop-carried dependence analysis and the combined II."""

import pytest

from repro.errors import HLSError
from repro.hls import (
    CombinedII,
    combined_ii,
    find_flow_dependences,
    parse_kernel,
    recurrence_ii,
)


class TestFindDependences:
    def test_in_place_scan(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) X[i] = X[i-1] + B[i];")
        deps = find_flow_dependences(nest)
        assert len(deps) == 1
        assert deps[0].array == "X"
        assert deps[0].distance == (1,)

    def test_no_write_no_dependence(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) Y[i] = X[i-1] + X[i+1];")
        assert find_flow_dependences(nest) == []

    def test_same_iteration_access_not_carried(self):
        nest = parse_kernel("for (i = 0; i <= 9; i++) X[i] = X[i] + B[i];")
        assert find_flow_dependences(nest) == []

    def test_forward_read_is_not_flow(self):
        # X[i+1] reads a value this loop has not written yet (anti-dep).
        nest = parse_kernel("for (i = 0; i <= 8; i++) X[i] = X[i+1] + B[i];")
        assert find_flow_dependences(nest) == []

    def test_2d_carried_by_inner_loop(self):
        nest = parse_kernel(
            """
            for (i = 0; i <= 7; i++)
              for (j = 1; j <= 7; j++)
                X[i][j] = X[i][j-1] + B[i][j];
            """
        )
        deps = find_flow_dependences(nest)
        assert deps[0].distance == (0, 1)
        assert deps[0].scalar_distance == 1

    def test_outer_carried_has_zero_scalar_distance(self):
        nest = parse_kernel(
            """
            for (i = 1; i <= 7; i++)
              for (j = 0; j <= 7; j++)
                X[i][j] = X[i-1][j] + B[i][j];
            """
        )
        deps = find_flow_dependences(nest)
        assert deps[0].distance == (1, 0)
        assert deps[0].scalar_distance == 0

    def test_non_uniform_self_access_rejected(self):
        nest = parse_kernel("for (i = 1; i <= 4; i++) X[i] = X[2*i] + B[i];")
        with pytest.raises(HLSError, match="non-uniform"):
            find_flow_dependences(nest)


class TestRecurrenceII:
    def test_distance_one_latency_three(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) X[i] = X[i-1] + B[i];")
        assert recurrence_ii(nest, operation_latency=3) == 3

    def test_distance_two_halves_the_bound(self):
        nest = parse_kernel("for (i = 2; i <= 9; i++) X[i] = X[i-2] + B[i];")
        assert recurrence_ii(nest, operation_latency=4) == 2

    def test_no_recurrence_gives_one(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) Y[i] = X[i-1] + X[i+1];")
        assert recurrence_ii(nest, operation_latency=5) == 1

    def test_outer_carried_does_not_constrain(self):
        nest = parse_kernel(
            """
            for (i = 1; i <= 7; i++)
              for (j = 0; j <= 7; j++)
                X[i][j] = X[i-1][j] + B[i][j];
            """
        )
        assert recurrence_ii(nest, operation_latency=8) == 1

    def test_latency_validation(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) X[i] = X[i-1] + B[i];")
        with pytest.raises(HLSError):
            recurrence_ii(nest, operation_latency=0)


class TestCombinedII:
    def test_recurrence_bound_kernel(self):
        nest = parse_kernel("for (i = 1; i <= 9; i++) X[i] = X[i-1] + X[i] + B[i];")
        result = combined_ii(nest, operation_latency=3)
        assert result == CombinedII(memory=1, recurrence=3)
        assert result.achieved == 3
        assert not result.memory_bound

    def test_memory_bound_kernel(self):
        from repro.hls import log_kernel_nest

        result = combined_ii(log_kernel_nest(), n_max=10)
        assert result.memory == 2
        assert result.recurrence == 1
        assert result.achieved == 2
        assert result.memory_bound

    def test_banking_cannot_fix_recurrences(self):
        """The punchline: infinite banks still cannot beat the recurrence."""
        nest = parse_kernel("for (i = 1; i <= 9; i++) X[i] = X[i-1] + B[i];")
        unlimited = combined_ii(nest, n_max=None, operation_latency=4)
        assert unlimited.memory == 1
        assert unlimited.achieved == 4
