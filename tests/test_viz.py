"""Unit tests for ASCII visualization."""

import pytest

from repro.core import BankMapping, partition
from repro.errors import PatternError
from repro.patterns import log_pattern, se_pattern, sobel3d_pattern
from repro.viz import (
    render_bank_grid,
    render_bank_layout,
    render_conflict_histogram,
    render_pattern,
    render_pattern_3d,
)


class TestRenderPattern:
    def test_se_cross(self):
        assert render_pattern(se_pattern()) == ".#.\n###\n.#."

    def test_log_diamond(self):
        art = render_pattern(log_pattern())
        assert art.splitlines()[0] == "..#.."
        assert art.count("#") == 13

    def test_custom_glyphs(self):
        art = render_pattern(se_pattern(), tap="X", empty=" ")
        assert "X" in art and "#" not in art

    def test_rejects_3d(self):
        with pytest.raises(PatternError):
            render_pattern(sobel3d_pattern())


class TestRenderPattern3D:
    def test_slices(self):
        art = render_pattern_3d(sobel3d_pattern())
        assert art.count("slice") == 3
        assert art.count("#") == 26

    def test_rejects_2d(self):
        with pytest.raises(PatternError):
            render_pattern_3d(log_pattern())


class TestBankGrid:
    def test_distinct_banks_in_window(self):
        solution = partition(log_pattern())
        art = render_bank_grid(solution, 5, 5)
        assert len(art.splitlines()) == 5

    def test_highlight_brackets(self):
        solution = partition(log_pattern())
        art = render_bank_grid(solution, 7, 7, highlight=log_pattern().translated((1, 1)))
        assert art.count("[") == 13

    def test_glyphs_beyond_ten(self):
        solution = partition(log_pattern())
        art = render_bank_grid(solution, 3, 13)
        assert "a" in art  # bank 10 renders as 'a'

    def test_rejects_3d(self):
        solution = partition(sobel3d_pattern())
        with pytest.raises(PatternError):
            render_bank_grid(solution, 3, 3)


class TestBankLayout:
    def test_each_bank_one_line(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(6, 6))
        art = render_bank_layout(mapping)
        assert len(art.splitlines()) == 5
        assert "bank  0:" in art

    def test_padding_marked(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(4, 7))
        art = render_bank_layout(mapping, max_width=200)
        assert "(--)" in art

    def test_truncation(self):
        mapping = BankMapping(solution=partition(se_pattern()), shape=(8, 10))
        art = render_bank_layout(mapping, max_width=30)
        assert all(len(line) <= 30 for line in art.splitlines())


class TestHistogram:
    def test_bars(self):
        art = render_conflict_histogram([13, 9, 5])
        lines = art.splitlines()
        assert lines[0].endswith("(13)")
        assert "#" * 9 in lines[1]
