"""The committed regression corpus stays green and deterministic.

``tests/corpus/verify_seed.jsonl`` holds 44 seed-0 generated cases plus
handwritten degenerate shapes (width-1 axes, dense boxes, narrow tails,
4-D under a binding ceiling).  Tier 1 replays every case through the full
oracle catalog — so a behavior change anywhere in the solve/map/simulate
stack that breaks a recorded verdict fails here, before the fuzz tier
ever runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import registry
from repro.verify import generate_case, replay_paths
from repro.verify.gen import CaseSpec
from repro.verify.runner import CASE_FORMAT

CORPUS = Path(__file__).parent / "corpus" / "verify_seed.jsonl"


@pytest.fixture(scope="module")
def corpus_records():
    return [json.loads(line) for line in CORPUS.read_text().splitlines() if line]


class TestCorpusFile:
    def test_every_line_is_a_case_record(self, corpus_records):
        assert len(corpus_records) >= 50
        for record in corpus_records:
            assert record["format"] == CASE_FORMAT
            CaseSpec.from_dict(record["case"])  # validates on construction

    def test_recorded_verdicts_are_all_ok(self, corpus_records):
        assert all(r["status"] == "ok" for r in corpus_records)

    def test_strata_and_schemes_covered(self, corpus_records):
        cases = [r["case"] for r in corpus_records]
        assert {c["scheme"] for c in cases} == {"same-size", "two-level"}
        assert {len(c["shape"]) for c in cases} == {1, 2, 3, 4}
        labels = {c["label"] for c in cases}
        assert {"random", "dense-box", "width1", "narrow-tail"} <= labels
        assert any(label.startswith("hand-") for label in labels)

    def test_seeded_cases_regenerate_bit_identical(self, corpus_records):
        # The generator's determinism contract: the committed seed-0 cases
        # are exactly what generate_case(0, i) produces today, on any host.
        for record in corpus_records:
            case = record["case"]
            if case["index"] >= 1000:  # handwritten entries
                continue
            assert generate_case(case["seed"], case["index"]).to_dict() == case


class TestReplay:
    def test_full_corpus_replays_clean(self):
        before = registry().counter("verify.cases").value
        report = replay_paths([CORPUS])
        assert report.cases >= 50
        assert report.ok, report.failing_records
        assert registry().counter("verify.cases").value - before == report.cases

    def test_replay_results_match_recorded_verdicts(self, corpus_records):
        report = replay_paths([CORPUS])
        fresh = {
            (r["case"]["seed"], r["case"]["index"]): r for r in report.records
        }
        for record in corpus_records:
            key = (record["case"]["seed"], record["case"]["index"])
            assert fresh[key] == record
