"""Scheduler core: planning, dedup, streaming, failure and crash semantics.

The ISSUE-7 contract tier for :mod:`repro.sched`: cycles are rejected
before anything runs, duplicate-digest tasks execute exactly once with a
bit-identical fan-out, a failure cancels only its own subtree, and a
crashed process worker is rescheduled once on a fresh pool before the
task is failed.  Everything here must hold identically at ``jobs=None``
and ``jobs=N`` — the scheduler is a speed/sharing knob, never a
semantics knob.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import span, tracer
from repro.sched import (
    CANCELLED,
    DEDUP_HITS,
    RESCHEDULE_LIMIT,
    RESCHEDULED,
    TASK_HISTOGRAM,
    TASKS_TOTAL,
    CycleError,
    DependencyFailedError,
    Task,
    TaskResult,
    gather,
    map_tasks,
    run_stream,
    sched_enabled,
)

@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset()
    yield
    obs.reset()


def _counter(name: str) -> int:
    return obs_metrics.registry().snapshot()["counters"].get(name, 0)


# -- top-level bodies (process placement requires picklable functions) -----


def _square(x: int) -> int:
    return x * x


def _add(x: int, y: int) -> int:
    return x + y


def _boom(msg: str) -> None:
    raise ValueError(msg)


def _payload_dict(tag: str, n: int):
    return {"tag": tag, "values": [i * n for i in range(4)]}


def _crash_once(marker_path: str) -> str:
    """Die hard on the first attempt, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("crashed")
        os._exit(1)
    return "recovered"


def _always_crash(_marker_unused: str) -> str:
    os._exit(1)
    return "unreachable"  # pragma: no cover


def _traced_body(item: int) -> str:
    with span("sched.test.work", item=item):
        return obs.current_trace_id() or ""


class TestPlanning:
    def test_cycle_detected_before_any_execution(self):
        ran = []
        a = Task(ran.append, args=("a",), name="a")
        b = Task(ran.append, args=("b",), deps=(a,), name="b")
        c = Task(ran.append, args=("c",), deps=(b,), name="c")
        a.deps = (c,)  # close the loop
        with pytest.raises(CycleError) as excinfo:
            run_stream([c])  # planning happens eagerly, before iteration
        assert ran == []
        assert set(excinfo.value.cycle) >= {"a", "b", "c"}

    def test_self_cycle(self):
        t = Task(_square, args=(2,), name="selfish")
        t.deps = (t,)
        with pytest.raises(CycleError):
            run_stream([t])

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="positive worker count"):
            run_stream([Task(_square, args=(2,))], jobs=0)
        with pytest.raises(ValueError, match="positive worker count"):
            gather([Task(_square, args=(2,))], jobs=-3)

    def test_placement_and_dep_validation(self):
        with pytest.raises(ValueError, match="placement"):
            Task(_square, args=(1,), placement="gpu")
        with pytest.raises(TypeError, match="deps must be Task"):
            Task(_square, args=(1,), deps=(lambda: None,))

    def test_diamond_runs_shared_dep_once(self):
        calls = []

        def base():
            calls.append("base")
            return 10

        root = Task(base, name="base")
        left = Task(_add, args=(1,), deps=(root,))
        right = Task(_add, args=(2,), deps=(root,))
        top = Task(_add, deps=(left, right))
        assert gather([top]) == [23]
        assert calls == ["base"]


class TestDedup:
    def test_duplicate_digest_runs_exactly_once_serial(self):
        calls = []

        def solve(tag):
            calls.append(tag)
            return {"tag": tag, "banks": [1, 2, 3]}

        tasks = [
            Task(solve, args=(f"t{i}",), key=("shared", "alpha"), name=f"t{i}")
            for i in range(5)
        ]
        before = _counter(DEDUP_HITS)
        outcomes = list(run_stream(tasks))
        # Exactly one execution; the other four are deduped shadows whose
        # value is the *identical* object (bit-identical fan-out).
        assert calls == ["t0"]
        primary = [o for o in outcomes if not o.deduped]
        shadows = [o for o in outcomes if o.deduped]
        assert len(primary) == 1 and len(shadows) == 4
        for shadow in shadows:
            assert shadow.ok
            assert shadow.value is primary[0].value
        assert _counter(DEDUP_HITS) - before == 4

    def test_dedup_fanout_bit_identical_across_processes(self):
        # 4 tasks, 2 distinct keys, forced process placement at jobs=2:
        # exactly 2 executions, and each alias shares its primary's object.
        tasks = [
            Task(
                _payload_dict,
                args=(f"k{i % 2}", i % 2),
                key=("proc-shared", i % 2),
                placement="process",
                name=f"cell{i}",
            )
            for i in range(4)
        ]
        outcomes = list(run_stream(tasks, jobs=2))
        primary = {o.task.key[1]: o for o in outcomes if not o.deduped}
        shadows = [o for o in outcomes if o.deduped]
        assert len(primary) == 2 and len(shadows) == 2
        for shadow in shadows:
            twin = primary[shadow.task.key[1]]
            assert shadow.value is twin.value
            assert shadow.value == _payload_dict(*shadow.task.args)

    def test_alias_dependents_rewire_to_the_representative(self):
        calls = []

        def solve():
            calls.append(1)
            return 7

        first = Task(solve, key="same")
        twin = Task(solve, key="same")
        downstream = Task(_square, deps=(twin,))  # depends on the *alias*
        assert gather([first, downstream]) == [7, 49]
        assert calls == [1]

    def test_distinct_keys_do_not_collapse(self):
        tasks = [Task(_square, args=(i,), key=("unique", i)) for i in range(4)]
        assert gather(tasks) == [0, 1, 4, 9]

    def test_translated_solve_keys_share_a_digest(self):
        # The paper-level sharing property the dag[] bench leans on:
        # translated copies of one pattern canonicalize to one solve key.
        from repro.core.cache import solve_key, stable_digest
        from repro.patterns import log_pattern

        base = log_pattern()
        shifted = [(dx + 3, dy + 5) for dx, dy in base.offsets]
        translated = type(base)(name=base.name, offsets=tuple(shifted))
        k1 = solve_key(base, (32, 32), 8, "latency", 0)
        k2 = solve_key(translated, (32, 32), 8, "latency", 0)
        assert stable_digest(k1) == stable_digest(k2)


class TestFailureIsolation:
    def _graph(self):
        a = Task(_boom, args=("kaput",), name="a")
        b = Task(_square, args=(2,), deps=(a,), name="b")
        c = Task(_square, args=(3,), deps=(b,), name="c")
        d = Task(_square, args=(4,), name="d")  # unrelated subgraph
        return a, b, c, d

    def test_failure_cancels_subtree_only(self):
        a, b, c, d = self._graph()
        before = _counter(CANCELLED)
        states = {o.task.name: o for o in run_stream([c, d])}
        assert states["a"].state == "failed"
        assert isinstance(states["a"].error, ValueError)
        assert states["b"].state == "cancelled"
        assert states["c"].state == "cancelled"
        assert states["d"].state == "done" and states["d"].value == 16
        assert _counter(CANCELLED) - before == 2

    def test_cancellation_error_chains_to_root_cause(self):
        a, b, c, d = self._graph()
        states = {o.task.name: o for o in run_stream([c, d])}
        err_b = states["b"].error
        assert isinstance(err_b, DependencyFailedError)
        assert err_b.dep is a and isinstance(err_b.__cause__, ValueError)
        err_c = states["c"].error
        assert isinstance(err_c, DependencyFailedError)
        assert err_c.dep is b
        # Walk the chain back to the original exception.
        root = err_c.__cause__
        while isinstance(root, DependencyFailedError):
            root = root.__cause__
        assert isinstance(root, ValueError) and "kaput" in str(root)

    def test_gather_raises_the_earliest_failure(self):
        a, b, c, d = self._graph()
        with pytest.raises(ValueError, match="kaput"):
            gather([a, d])

    def test_failed_process_task_surfaces_its_own_exception(self):
        bad = Task(_boom, args=("in-worker",), placement="process", name="bad")
        good = Task(_square, args=(6,), placement="process", name="good")
        states = {o.task.name: o for o in run_stream([bad, good], jobs=2)}
        assert states["bad"].state == "failed"
        assert isinstance(states["bad"].error, ValueError)
        assert states["good"].state == "done" and states["good"].value == 36


class TestStreaming:
    def test_results_stream_before_the_graph_finishes(self):
        ran = []

        def body(i):
            ran.append(i)
            return i

        tasks = [Task(body, args=(i,)) for i in range(5)]
        stream = run_stream(tasks)  # serial: lazy, one task per yield
        first = next(stream)
        assert isinstance(first, TaskResult) and first.ok
        assert ran == [0]  # nothing past the first yield has run
        rest = list(stream)
        assert ran == [0, 1, 2, 3, 4]
        assert len(rest) == 4

    def test_serial_completion_order_is_registration_order(self):
        tasks = [Task(_square, args=(i,)) for i in range(6)]
        order = [o.task for o in run_stream(tasks)]
        assert order == tasks


class TestCrashResilience:
    def test_crashed_worker_rescheduled_once_then_succeeds(self, tmp_path):
        marker = tmp_path / "crash-once.marker"
        crasher = Task(
            _crash_once, args=(str(marker),), placement="process", name="crasher"
        )
        # Inline companion keeps the resolved worker count at 2 without
        # putting a second task in the blast radius of the broken pool.
        companion = Task(_square, args=(9,), placement="inline", name="companion")
        before = _counter(RESCHEDULED)
        states = {o.task.name: o for o in run_stream([crasher, companion], jobs=2)}
        assert states["companion"].value == 81
        assert states["crasher"].state == "done"
        assert states["crasher"].value == "recovered"
        assert states["crasher"].attempts == RESCHEDULE_LIMIT + 1
        assert _counter(RESCHEDULED) - before == 1
        assert marker.exists()

    def test_crash_beyond_limit_fails_task_and_cancels_dependents(self, tmp_path):
        crasher = Task(
            _always_crash, args=("-",), placement="process", name="crasher"
        )
        dependent = Task(
            _square, args=(2,), deps=(crasher,), placement="inline", name="dep"
        )
        bystander = Task(_square, args=(5,), placement="inline", name="bystander")
        before = _counter(RESCHEDULED)
        states = {
            o.task.name: o for o in run_stream([dependent, bystander], jobs=2)
        }
        assert states["crasher"].state == "failed"
        assert states["crasher"].attempts == RESCHEDULE_LIMIT + 1
        assert states["dep"].state == "cancelled"
        assert states["bystander"].state == "done" and states["bystander"].value == 25
        assert _counter(RESCHEDULED) - before == RESCHEDULE_LIMIT


class TestMapTasks:
    def test_matches_flat_map_in_order(self):
        items = list(range(12))
        assert map_tasks(_square, items) == [x * x for x in items]
        assert map_tasks(_square, items, jobs=3) == [x * x for x in items]

    def test_keys_enable_dedup(self):
        calls = []

        def body(item):
            calls.append(item)
            return item % 3

        items = list(range(9))
        values = map_tasks(body, items, keys=[i % 3 for i in items])
        assert values == [i % 3 for i in items]
        assert calls == [0, 1, 2]  # one execution per distinct key

    def test_keys_must_parallel_items(self):
        with pytest.raises(ValueError, match="keys must parallel items"):
            map_tasks(_square, [1, 2, 3], keys=[1, 2])

    def test_repro_sched_0_falls_back_to_flat_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "0")
        assert not sched_enabled()
        before = _counter(TASKS_TOTAL)
        assert map_tasks(_square, [1, 2, 3], jobs=2, keys=[0, 0, 0]) == [1, 4, 9]
        # Flat fallback: no scheduler involvement, hence no sched.* activity.
        assert _counter(TASKS_TOTAL) - before == 0

    def test_sched_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHED", raising=False)
        assert sched_enabled()


class TestTelemetry:
    def test_counters_and_histogram_on_the_shared_registry(self):
        before_total = _counter(TASKS_TOTAL)
        list(run_stream([Task(_square, args=(i,)) for i in range(4)]))
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"][TASKS_TOTAL] - before_total == 4
        assert TASK_HISTOGRAM in snap["histograms"]
        assert snap["histograms"][TASK_HISTOGRAM]["count"] >= 4

    def test_trace_id_propagates_into_process_workers(self):
        obs.enable()
        try:
            obs.reset()
            with obs.trace("sched-trace-1"):
                seen = map_tasks(
                    _traced_body, [1, 2], jobs=2, placement="process"
                )
            assert seen == ["sched-trace-1", "sched-trace-1"]
            # Worker spans merged home, stamped with the worker identity
            # so PR-6 trace trees reassemble across the process border.
            records = tracer().records_for("sched-trace-1")
            work = [r for r in records if r.name == "sched.test.work"]
            assert len(work) == 2
            assert all(r.attrs.get("worker_id", "").startswith("pid") for r in work)
        finally:
            obs.reset()
            obs.disable()
