"""Unit tests for the pattern generators."""

import pytest

from repro.core import check_theorem1, partition
from repro.errors import PatternError
from repro.patterns import (
    checkerboard,
    cross,
    diamond,
    grid_of_patterns,
    line,
    random_pattern,
    rectangle,
    sliding_windows,
    unrolled,
)


class TestRectangle:
    def test_size(self):
        assert rectangle((3, 4)).size == 12

    def test_dense_window_needs_exactly_m_banks(self):
        # full k x k windows transform to consecutive integers
        for k in (2, 3, 4):
            assert partition(rectangle((k, k))).n_banks == k * k

    def test_rejects_empty(self):
        with pytest.raises(PatternError):
            rectangle((0, 3))


class TestLine:
    def test_along_each_dim(self):
        assert line(4, 0, 2).extents == (4, 1)
        assert line(4, 1, 2).extents == (1, 4)

    def test_needs_length_banks(self):
        assert partition(line(6, 1, 2)).n_banks == 6

    def test_validation(self):
        with pytest.raises(PatternError):
            line(0, 0, 2)
        with pytest.raises(PatternError):
            line(3, 2, 2)


class TestCross:
    def test_von_neumann(self):
        assert cross(1, 2).size == 5

    def test_matches_se(self):
        from repro.patterns import se_pattern

        assert cross(1, 2).normalized() == se_pattern().normalized()

    def test_3d_cross(self):
        assert cross(1, 3).size == 7

    def test_arm_zero_is_singleton(self):
        assert cross(0, 2).size == 1

    def test_negative_arm(self):
        with pytest.raises(PatternError):
            cross(-1, 2)


class TestDiamond:
    def test_l1_ball_sizes(self):
        assert diamond(1).size == 5
        assert diamond(2).size == 13

    def test_radius2_is_log_shape(self):
        from repro.patterns import log_pattern

        assert diamond(2).normalized() == log_pattern().normalized()

    def test_radius_zero(self):
        assert diamond(0).size == 1


class TestCheckerboard:
    def test_parities_partition_the_box(self):
        even = checkerboard((4, 4), 0)
        odd = checkerboard((4, 4), 1)
        assert even.size + odd.size == 16
        assert not set(even.offsets) & set(odd.offsets)

    def test_empty_raises(self):
        with pytest.raises(PatternError):
            checkerboard((1, 1), 1)


class TestRandom:
    def test_deterministic(self):
        assert random_pattern(6, (5, 5), seed=3) == random_pattern(6, (5, 5), seed=3)

    def test_different_seeds_differ(self):
        a = random_pattern(10, (6, 6), seed=1)
        b = random_pattern(10, (6, 6), seed=2)
        assert a != b

    def test_theorem1_holds(self):
        for seed in range(10):
            assert check_theorem1(random_pattern(8, (6, 6), seed=seed))

    def test_capacity_check(self):
        with pytest.raises(PatternError):
            random_pattern(5, (2, 2))

    def test_size_check(self):
        with pytest.raises(PatternError):
            random_pattern(0, (2, 2))


class TestUnrolling:
    def test_sliding_windows(self):
        windows = sliding_windows(cross(1, 2), 3)
        assert len(windows) == 3
        assert windows[1] == cross(1, 2).translated((0, 1))

    def test_unrolled_grows_along_last_axis(self):
        base = rectangle((2, 2))
        merged = unrolled(base, 3)
        assert merged.extents == (2, 4)
        assert merged.size == 8

    def test_unrolled_factor_one_is_identity(self):
        base = rectangle((2, 2))
        assert unrolled(base, 1).offsets == base.offsets

    def test_unrolled_needs_more_banks(self):
        base = rectangle((2, 2))
        assert partition(unrolled(base, 2)).n_banks > partition(base).n_banks

    def test_bad_steps(self):
        with pytest.raises(PatternError):
            sliding_windows(cross(1, 2), 0)


class TestSuite:
    def test_grid_of_patterns_labels(self):
        suite = grid_of_patterns(12)
        names = [name for name, _ in suite]
        assert len(names) == len(set(names))
        assert all(p.size >= 1 for _, p in suite)
