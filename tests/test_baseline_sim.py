"""Baseline scheme mappings and their registered bulk simulation kernels.

Covers the cyclic/block :class:`~repro.core.mapping.BankMapping` subclasses
(:mod:`repro.baselines.mapping`): address correctness against the scalar
reference, bijectivity, overhead accounting against each scheme's closed
form, and — the point of the registration — that ``simulate_sweep`` runs
them through the batched engines (vectorized, and native when the
extension is built — the shared ``fast_engine`` fixture) with bit-identical
reports.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    BlockBankMapping,
    BlockScheme,
    CyclicBankMapping,
    CyclicScheme,
    block_mapping,
    cyclic_mapping,
)
from repro.core.vectorized import (
    has_bulk_kernel,
    verify_bijective_bulk,
    verify_bulk_matches_scalar,
)
from repro.errors import SimulationError
from repro.patterns.generators import rectangle
from repro.sim.memsim import simulate_sweep

SHAPE = (64, 64)


def _cyclic(n_banks: int = 8, dim: int = 0) -> CyclicBankMapping:
    pattern = rectangle((3, 3), name="avg3x3")
    scheme = CyclicScheme(dim=dim, n_banks=n_banks, ndim=2)
    return cyclic_mapping(scheme, pattern, SHAPE)


def _block(n_banks: int = 4, dim: int = 0) -> BlockBankMapping:
    pattern = rectangle((3, 3), name="avg3x3")
    scheme = BlockScheme(dim=dim, n_banks=n_banks, shape=SHAPE)
    return block_mapping(scheme, pattern)


@pytest.fixture(params=["cyclic", "block"])
def baseline_mapping(request):
    return _cyclic() if request.param == "cyclic" else _block()


class TestAddressing:
    def test_bulk_matches_scalar(self, baseline_mapping):
        assert verify_bulk_matches_scalar(baseline_mapping, sample=4096)

    def test_bijective(self, baseline_mapping):
        assert baseline_mapping.verify_bijective()
        assert verify_bijective_bulk(baseline_mapping)

    def test_overhead_matches_scheme_closed_form(self):
        shape = (10, 7)
        pattern = rectangle((2, 2))
        array_elements = shape[0] * shape[1]

        cyclic_scheme = CyclicScheme(dim=0, n_banks=4, ndim=2)
        cyclic = cyclic_mapping(cyclic_scheme, pattern, shape)
        assert (
            cyclic.total_bank_elements - array_elements
            == cyclic_scheme.overhead_elements(shape)
        )

        block_scheme = BlockScheme(dim=0, n_banks=4, shape=shape)
        block = block_mapping(block_scheme, pattern)
        assert (
            block.total_bank_elements - array_elements
            == block_scheme.overhead_elements()
        )

    def test_block_solution_is_a_carrier(self):
        # Block banking is not a modular linear hash: the mapping override
        # is the only valid bank hash, never solution.bank_of.
        mapping = _block()
        assert mapping.solution.scheme == "block"
        hashes = [
            mapping.bank_of((x, 0)) for x in range(mapping.shape[0])
        ]
        assert hashes == sorted(hashes)  # contiguous chunks, not interleaved


class TestSimulation:
    def test_engines_agree(self, baseline_mapping, fast_engine):
        scalar = simulate_sweep(baseline_mapping, engine="scalar")
        fast = simulate_sweep(baseline_mapping, engine=fast_engine)
        auto = simulate_sweep(baseline_mapping, engine="auto")
        assert scalar == fast == auto

    def test_cyclic_measured_delta_matches_solution(self, fast_engine):
        mapping = _cyclic()
        report = simulate_sweep(mapping, engine=fast_engine)
        assert report.measured_delta_ii == mapping.solution.delta_ii

    def test_block_worst_case_at_chunk_boundary(self, fast_engine):
        mapping = _block()
        report = simulate_sweep(mapping, engine=fast_engine)
        assert report.measured_delta_ii == mapping.solution.delta_ii

    def test_fast_path_never_calls_scalar_methods(self, monkeypatch, fast_engine):
        # The registered kernel (or fused native spec), not the per-element
        # methods, must produce every address (even with verify=True).
        mapping = _cyclic()

        def boom(self, element, ops=None):  # pragma: no cover - must not run
            raise AssertionError("scalar address method called on bulk path")

        monkeypatch.setattr(CyclicBankMapping, "bank_of", boom)
        monkeypatch.setattr(CyclicBankMapping, "offset_of", boom)
        report = simulate_sweep(mapping, engine=fast_engine)
        assert report.iterations > 0


class TestDispatch:
    def test_kernels_registered(self):
        assert has_bulk_kernel(CyclicBankMapping)
        assert has_bulk_kernel(BlockBankMapping)

    def test_subclass_falls_back_to_scalar(self, fast_engine):
        # Kernel lookup is by exact type: a subclass that might override
        # the scalar address methods must not inherit the bulk kernel (nor
        # the native spec).
        class TweakedCyclic(CyclicBankMapping):
            pass

        assert not has_bulk_kernel(TweakedCyclic)
        base = _cyclic()
        tweaked = TweakedCyclic(
            solution=base.solution, shape=base.shape, dim=base.dim
        )
        report = simulate_sweep(tweaked, engine="auto")
        assert report == simulate_sweep(base, engine="scalar")
        with pytest.raises(SimulationError, match="registered bulk kernel"):
            simulate_sweep(tweaked, engine=fast_engine)
