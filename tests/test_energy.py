"""Tests for the first-order energy model."""

import pytest

from repro.core import BankMapping, partition
from repro.errors import HardwareModelError
from repro.hw import (
    EnergyModel,
    banked_sweep_energy,
    duplicated_sweep_energy,
    monolithic_sweep_energy,
)
from repro.patterns import log_pattern


def mapping_for(shape=(64, 65)):
    return BankMapping(solution=partition(log_pattern()), shape=shape)


class TestModel:
    def test_access_energy_grows_with_size(self):
        model = EnergyModel()
        assert model.access_energy(1000) > model.access_energy(100)

    def test_sqrt_scaling(self):
        model = EnergyModel()
        assert model.access_energy(400) == pytest.approx(2 * model.access_energy(100))

    def test_port_penalty(self):
        model = EnergyModel(port_penalty=0.8)
        single = model.access_energy(100, ports=1)
        many = model.access_energy(100, ports=13)
        assert many == pytest.approx(single * (1 + 0.8 * 12))

    def test_leakage_linear(self):
        model = EnergyModel()
        assert model.leakage_energy(100, 10) == pytest.approx(
            10 * model.leakage_energy(100, 1)
        )

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            EnergyModel(read_unit=0)
        model = EnergyModel()
        with pytest.raises(HardwareModelError):
            model.access_energy(0)
        with pytest.raises(HardwareModelError):
            model.access_energy(10, ports=0)
        with pytest.raises(HardwareModelError):
            model.leakage_energy(-1, 10)


class TestArchitectureComparison:
    """The paper's Section 1 argument, quantified."""

    def test_banking_beats_monolithic_multiport(self):
        mapping = mapping_for()
        m = log_pattern().size
        banked = banked_sweep_energy(mapping, iterations=1000)
        mono = monolithic_sweep_energy(
            mapping.original_elements, m, iterations=1000, ports=m
        )
        assert banked.total < mono.total

    def test_banking_beats_duplication(self):
        mapping = mapping_for()
        m = log_pattern().size
        banked = banked_sweep_energy(mapping, iterations=1000)
        dup = duplicated_sweep_energy(mapping.original_elements, m, iterations=1000)
        assert banked.total < dup.total
        # duplication's leakage covers m full copies
        assert dup.leakage > banked.leakage * (m / 2)

    def test_dynamic_energy_scales_with_bank_size(self):
        small = banked_sweep_energy(mapping_for((32, 39)), iterations=100)
        large = banked_sweep_energy(mapping_for((128, 130)), iterations=100)
        assert large.dynamic > small.dynamic

    def test_report_total(self):
        report = banked_sweep_energy(mapping_for(), iterations=10)
        assert report.total == pytest.approx(report.dynamic + report.leakage)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            banked_sweep_energy(mapping_for(), iterations=0)
        with pytest.raises(HardwareModelError):
            monolithic_sweep_energy(0, 5, 10)
        with pytest.raises(HardwareModelError):
            duplicated_sweep_energy(10, 0, 10)
