"""Property-based tests (hypothesis) for the core invariants.

These drive the paper's claims with randomized patterns and array shapes
instead of the seven fixed benchmarks:

* Theorem 1 — the derived transform separates *any* pattern.
* Algorithm 1 — its ``N_f`` is conflict-free and minimal for the transform.
* Mapping — ``(B, F)`` is injective for any pattern/shape combination,
  and the measured overhead equals the closed-form Section 4.4.2 formula.
* Conflict counts are loop-offset invariant.
* The fast ``N_c`` fold always covers all inner banks within its rounds.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BankMapping,
    Pattern,
    check_theorem1,
    delta_ii,
    derive_alpha,
    fast_nc,
    minimize_nf,
    offset_window,
    ours_overhead_elements,
    partition,
    same_size_sweep,
)

# -- strategies -----------------------------------------------------------


@st.composite
def patterns(draw, max_dim: int = 3, max_extent: int = 6, max_size: int = 10):
    """Random patterns: 1-3 dimensions, small bounding boxes."""
    ndim = draw(st.integers(min_value=1, max_value=max_dim))
    coordinate = st.integers(min_value=-max_extent, max_value=max_extent)
    offset = st.tuples(*[coordinate] * ndim)
    offsets = draw(
        st.sets(offset, min_size=1, max_size=max_size)
    )
    return Pattern(offsets)


@st.composite
def patterns_2d(draw, max_extent: int = 5, max_size: int = 9):
    coordinate = st.integers(min_value=0, max_value=max_extent)
    offset = st.tuples(coordinate, coordinate)
    offsets = draw(st.sets(offset, min_size=1, max_size=max_size))
    return Pattern(offsets)


# -- Theorem 1 ---------------------------------------------------------------


@given(patterns())
@settings(max_examples=150, deadline=None)
def test_theorem1_derived_alpha_always_separates(pattern):
    assert check_theorem1(pattern)


@given(patterns(), st.tuples(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50)))
@settings(max_examples=80, deadline=None)
def test_theorem1_translation_invariant(pattern, shift):
    shifted = pattern.translated(shift[: pattern.ndim])
    assert check_theorem1(shifted)
    assert derive_alpha(pattern).alpha == derive_alpha(shifted).alpha


# -- Algorithm 1 -------------------------------------------------------------


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_algorithm1_result_is_conflict_free(pattern):
    n_f, _, z = minimize_nf(pattern)
    residues = {v % n_f for v in z}
    assert len(residues) == pattern.size


@given(patterns(max_size=8))
@settings(max_examples=80, deadline=None)
def test_algorithm1_result_is_minimal_for_alpha(pattern):
    n_f, _, z = minimize_nf(pattern)
    for n in range(pattern.size, n_f):
        assert len({v % n for v in z}) < pattern.size


@given(patterns())
@settings(max_examples=80, deadline=None)
def test_algorithm1_bounded_by_spread_plus_one(pattern):
    n_f, _, z = minimize_nf(pattern)
    assert n_f <= max(max(z) - min(z) + 1, pattern.size)


# -- bank-limit schemes ------------------------------------------------------


@given(st.integers(1, 64), st.integers(1, 32))
def test_fast_nc_invariants(n_f, n_max):
    n_c, rounds = fast_nc(n_f, n_max)
    assert 1 <= n_c <= n_max
    assert n_c * rounds >= n_f
    assert rounds == math.ceil(n_f / n_max)


@given(patterns_2d(), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_sweep_conflicts_bounded(pattern, n_max):
    sweep = same_size_sweep(pattern, n_max)
    m = pattern.size
    for n in range(1, n_max + 1):
        conflicts = sweep.conflicts_by_n[n]
        assert math.ceil(m / n) <= conflicts <= m


@given(patterns_2d(), st.integers(2, 12))
@settings(max_examples=40, deadline=None)
def test_partition_constrained_respects_nmax(pattern, n_max):
    solution = partition(pattern, n_max=n_max)
    assert solution.n_banks <= n_max
    banks = solution.bank_indices()
    worst = max(banks.count(b) for b in set(banks))
    assert worst - 1 == solution.delta_ii


# -- conflict offset invariance ---------------------------------------------


@given(patterns_2d())
@settings(max_examples=40, deadline=None)
def test_delta_ii_offset_invariant(pattern):
    solution = partition(pattern)
    window = offset_window(2, solution.n_banks)
    assert delta_ii(pattern, solution.bank_of, window) == 0


# -- mapping bijectivity and overhead ----------------------------------------


@st.composite
def mapping_cases(draw):
    pattern = draw(patterns_2d(max_extent=4, max_size=7))
    extents = pattern.normalized().extents
    w0 = draw(st.integers(max(extents[0], 2), 9))
    w1 = draw(st.integers(max(extents[1], 2), 30))
    return pattern.normalized(), (w0, w1)


@given(mapping_cases())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mapping_bijective_for_random_cases(case):
    pattern, shape = case
    mapping = BankMapping(solution=partition(pattern), shape=shape)
    assert mapping.verify_bijective()


@given(mapping_cases())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mapping_overhead_matches_closed_form(case):
    pattern, shape = case
    solution = partition(pattern)
    mapping = BankMapping(solution=solution, shape=shape)
    assert mapping.overhead_elements == ours_overhead_elements(shape, solution.n_banks)


@given(mapping_cases())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mapping_overhead_bounded_by_paper_maximum(case):
    pattern, shape = case
    solution = partition(pattern)
    mapping = BankMapping(solution=solution, shape=shape)
    assert mapping.overhead_elements <= (solution.n_banks - 1) * shape[0]


# -- constrained mapping bijectivity -----------------------------------------


@given(mapping_cases(), st.integers(2, 6), st.booleans())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_constrained_mappings_bijective(case, n_max, same_size):
    pattern, shape = case
    solution = partition(pattern, n_max=n_max, same_size=same_size)
    mapping = BankMapping(solution=solution, shape=shape)
    assert mapping.verify_bijective()


# -- LTB cross-checks ----------------------------------------------------------


@given(patterns_2d(max_extent=3, max_size=6))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ltb_never_more_banks_than_ours(pattern):
    from repro.baselines import ltb_partition

    ours = partition(pattern).n_banks
    ltb = ltb_partition(pattern, n_max=ours).solution.n_banks
    assert ltb <= ours
    banks = [ltb_partition(pattern).solution.bank_of(d) for d in pattern.offsets]
    assert len(set(banks)) == pattern.size
