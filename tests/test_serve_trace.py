"""End-to-end request telemetry through a live server.

The acceptance tier for the tracing tentpole: a real
:class:`~repro.serve.server.ThreadedServer`, real HTTP, observability on —
asserting that one request's spans reassemble into one tree retrievable
from ``/debug/traces``, that coalesced duplicates produce exactly one
solve span plus links, and that ``/metrics`` carries valid cumulative
histogram series.
"""

from __future__ import annotations

import importlib
import math
import threading

import pytest

from repro import obs
from repro.eval.parallel import run_parallel
from repro.serve import ServeClient, ServeError, serve_in_thread


@pytest.fixture
def telemetry(monkeypatch):
    """Observability on for the whole server lifetime (and forked workers)."""
    monkeypatch.setenv("REPRO_OBS", "1")
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def count_solves(monkeypatch):
    solver_mod = importlib.import_module("repro.core.solver")
    calls = {"n": 0}
    real = solver_mod._solve_impl

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(solver_mod, "_solve_impl", counting)
    return calls


def _span_names(node):
    yield node["name"]
    for child in node.get("children", []):
        yield from _span_names(child)


def _name_shape(node):
    """The tree as (name, sorted child shapes) — structure, no timings."""
    return (node["name"], tuple(sorted(_name_shape(c) for c in node.get("children", []))))


def _find_tree(client, trace_id):
    traces = client.debug_traces()["traces"]
    matches = [t for t in traces if t["trace_id"] == trace_id]
    assert matches, f"trace {trace_id} not in /debug/traces"
    return matches[0]


class TestEndToEndTrace:
    def test_simulate_request_yields_full_tree(self, telemetry, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "s"), debug=True) as srv:
            with ServeClient(port=srv.port) as client:
                doc = client.simulate(shape=(32, 32), benchmark="log", n_max=10)
                tree = _find_tree(client, doc["trace_id"])
        assert tree["spans"] >= 4
        (root,) = tree["roots"]
        assert root["name"] == "serve.request"
        assert root["attrs"]["path"] == "/simulate"
        assert root["attrs"]["status"] == 200
        names = set(_span_names(root))
        # serve -> coalesce/store -> solve -> simulate, one tree
        assert {"serve.store.get", "serve.solve", "solve.solve", "serve.simulate",
                "sim.simulate_sweep"} <= names
        solve_node = _walk_to(root, "serve.solve")
        assert _walk_to(solve_node, "solve.solve") is not None

    @pytest.mark.slow
    def test_pool_worker_spans_merge_into_the_request_tree(
        self, telemetry, tmp_path
    ):
        # A one-job batch runs serially in the batch thread (resolve_jobs
        # clamps to the workload), so engaging the pool needs >= 2 distinct
        # specs in one batch: the per-batch solve delay holds the loop busy
        # while the concurrent requests queue up behind the first.
        with serve_in_thread(
            store_dir=str(tmp_path / "s"),
            jobs=2,
            solve_delay_s=0.4,
            debug=True,
        ) as srv:
            barrier = threading.Barrier(3)
            docs = [None] * 3

            def request(i):
                with ServeClient(port=srv.port) as c:
                    barrier.wait(timeout=10.0)
                    docs[i] = c.solve(benchmark="se", n_max=4 + i)

            threads = [
                threading.Thread(target=request, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert all(doc is not None for doc in docs)
            with ServeClient(port=srv.port) as client:
                trees = [_find_tree(client, doc["trace_id"]) for doc in docs]
        pooled = []
        for tree in trees:
            (root,) = tree["roots"]
            solve_node = _walk_to(root, "serve.solve")
            assert solve_node is not None, set(_span_names(root))
            assert _walk_to(solve_node, "solve.solve") is not None
            if "worker_id" in solve_node["attrs"]:
                pooled.append(solve_node)
        # at least the coalesced pair ran on the pool; provenance survives
        assert pooled, "no solve span carries pool-worker provenance"
        for solve_node in pooled:
            assert solve_node["attrs"]["worker_id"].startswith("pid")

    def test_response_has_no_trace_id_when_obs_disabled(self, tmp_path):
        obs.disable()
        with serve_in_thread(store_dir=str(tmp_path / "s"), debug=True) as srv:
            with ServeClient(port=srv.port) as client:
                doc = client.solve(benchmark="se")
                assert "trace_id" not in doc
                assert client.debug_traces()["traces"] == []


def _walk_to(node, name):
    if node["name"] == name:
        return node
    for child in node.get("children", []):
        found = _walk_to(child, name)
        if found is not None:
            return found
    return None


class TestCoalescedTraces:
    BURST = 16

    def _burst(self, port, n_max):
        barrier = threading.Barrier(self.BURST)
        docs = [None] * self.BURST

        def request(i):
            with ServeClient(port=port) as client:
                barrier.wait(timeout=10.0)
                docs[i] = client.solve(benchmark="median", n_max=n_max)

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(self.BURST)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(doc is not None for doc in docs)
        return docs

    @pytest.mark.slow
    def test_sixteen_duplicates_one_solve_span_followers_link(
        self, telemetry, tmp_path, count_solves
    ):
        with serve_in_thread(
            store_dir=str(tmp_path / "s"),
            solve_delay_s=0.6,
            debug=True,
            trace_buffer_size=64,
        ) as srv:
            docs = self._burst(srv.port, n_max=6)
            with ServeClient(port=srv.port) as client:
                trees = {
                    doc["trace_id"]: _find_tree(client, doc["trace_id"])
                    for doc in docs
                }
        assert count_solves["n"] == 1
        leaders = [
            tid
            for tid, tree in trees.items()
            if "serve.solve" in set(_span_names(tree["roots"][0]))
        ]
        assert len(leaders) == 1, "exactly one request's tree owns the solve span"
        leader = leaders[0]
        followers = [tid for tid in trees if tid != leader]
        assert len(followers) == self.BURST - 1
        for tid in followers:
            assert trees[tid]["links"] == [leader], (
                f"follower {tid} does not link the leader's trace"
            )
        assert trees[leader]["links"] == []

    @pytest.mark.slow
    def test_leader_tree_shape_is_stable_across_runs(
        self, telemetry, tmp_path
    ):
        shapes = []
        with serve_in_thread(
            store_dir=str(tmp_path / "s"),
            solve_delay_s=0.6,
            debug=True,
            trace_buffer_size=64,
        ) as srv:
            for n_max in (6, 7):  # distinct solve keys: both bursts solve fresh
                docs = self._burst(srv.port, n_max=n_max)
                with ServeClient(port=srv.port) as client:
                    trees = [
                        _find_tree(client, doc["trace_id"]) for doc in docs
                    ]
                leader_trees = [
                    t
                    for t in trees
                    if "serve.solve" in set(_span_names(t["roots"][0]))
                ]
                assert len(leader_trees) == 1
                shapes.append(_name_shape(leader_trees[0]["roots"][0]))
        assert shapes[0] == shapes[1], "merged tree shape varies across runs"


class TestDebugSurface:
    def test_debug_endpoints_are_gated_off_by_default(self, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "s")) as srv:
            with ServeClient(port=srv.port) as client:
                for call in (
                    client.debug_traces,
                    client.debug_inflight,
                    client.debug_store,
                ):
                    with pytest.raises(ServeError) as info:
                        call()
                    assert info.value.http_status == 404
                    assert "disabled" in str(info.value)

    def test_debug_inflight_and_store(self, telemetry, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "s"), debug=True) as srv:
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="se")
                inflight = client.debug_inflight()
                assert inflight["queued"] == [] and inflight["inflight"] == []
                assert inflight["pending"] == 0
                assert inflight["max_pending"] == 256
                store = client.debug_store()["store"]
                assert store["entries"] == 1
                assert store["writes"] == 1
                assert store["bytes"] > 0
                assert store["hit_rate"] == 0.0  # one lookup, one miss

    def test_trace_buffer_is_bounded(self, telemetry, tmp_path):
        with serve_in_thread(
            store_dir=str(tmp_path / "s"), debug=True, trace_buffer_size=3
        ) as srv:
            with ServeClient(port=srv.port) as client:
                for _ in range(6):
                    client.healthz()
                doc = client.debug_traces()
                assert doc["count"] <= 3


def _parse_prometheus_histogram(text, prom_name):
    buckets, total, count = [], None, None
    for line in text.splitlines():
        if line.startswith(f'{prom_name}_bucket{{le="'):
            le, value = line.split('le="')[1].split('"}')
            buckets.append(
                (math.inf if le == "+Inf" else float(le), int(value.strip()))
            )
        elif line.startswith(f"{prom_name}_sum "):
            total = float(line.split()[1])
        elif line.startswith(f"{prom_name}_count "):
            count = int(line.split()[1])
    return buckets, total, count


class TestServeMetrics:
    def test_request_and_solve_histograms_are_valid_cumulative_series(
        self, tmp_path
    ):
        with serve_in_thread(store_dir=str(tmp_path / "s")) as srv:
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="se")
                client.solve(benchmark="log", n_max=10)
                text = client.metrics_text()
        for prom_name in (
            "repro_serve_request_latency_ms",
            "repro_solve_cold_ms",
        ):
            assert f"# TYPE {prom_name} histogram" in text, prom_name
            buckets, total, count = _parse_prometheus_histogram(text, prom_name)
            assert buckets and count and total is not None, prom_name
            bounds = [b for b, _ in buckets]
            counts = [c for _, c in buckets]
            assert bounds == sorted(bounds), f"{prom_name}: le not monotone"
            assert math.isinf(bounds[-1]), f"{prom_name}: missing +Inf bucket"
            assert counts == sorted(counts), f"{prom_name}: not cumulative"
            assert counts[-1] == count, f"{prom_name}: +Inf != _count"

    def test_metrics_include_store_counters_and_gauges(self, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "s")) as srv:
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="median")  # miss + write
                client.solve(benchmark="median")  # store hit, no re-solve
                text = client.metrics_text()
        assert "repro_serve_store_misses_total 1" in text
        assert "repro_serve_store_writes_total 1" in text
        assert "repro_serve_store_evictions_total 0" in text
        assert "repro_serve_store_hits_total 1" in text
        assert "repro_serve_store_entries 1" in text
        assert "repro_serve_store_max_entries 4096" in text

    def test_warm_solves_record_the_warm_histogram(self):
        # No store: the duplicate request re-enters the solver, whose
        # in-memory cache hit lands in the warm histogram.  (With a store
        # attached the second request is a store hit and never re-solves.)
        with serve_in_thread() as srv:
            with ServeClient(port=srv.port) as client:
                client.solve(benchmark="se")
                client.solve(benchmark="se")
        hists = obs.registry().log_histograms()
        assert hists["solve.cold_ms"].count >= 1
        assert hists["solve.warm_ms"].count >= 1


def _traced_double(x):
    from repro.obs.tracer import span

    with span("work.item", item=x):
        return 2 * x


class TestParallelTierTracing:
    @pytest.mark.slow
    def test_pool_spans_merge_with_worker_provenance(self, telemetry):
        with obs.trace("par1"):
            with obs.span("eval.parent"):
                assert run_parallel(_traced_double, [1, 2, 3], jobs=2) == [2, 4, 6]
        records = obs.tracer().records()
        items = [r for r in records if r.name == "work.item"]
        assert len(items) == 3
        parent = next(r for r in records if r.name == "eval.parent")
        workers = {r.attrs.get("worker_id") for r in items}
        assert all(w and w.startswith("pid") for w in workers)
        # worker-side roots were re-parented under the submitting span
        assert {r.parent_id for r in items} == {parent.span_id}
        # and each carries the request's trace id across the process border
        assert {r.trace_id for r in items} == {"par1"}
        hist = obs.registry().log_histograms()["parallel.task_ms"]
        assert hist.count == 3
        per_worker = [
            name
            for name in obs.registry().snapshot()["counters"]
            if name.startswith("worker.pid") and name.endswith("parallel.tasks")
        ]
        assert per_worker, "per-worker task counters missing"
