"""Unit tests for repro.core.conflict (δ(II) analysis)."""

import pytest

from repro.core import (
    Pattern,
    conflict_table,
    delta_ii,
    derive_alpha,
    measured_cycles,
    offset_window,
    partition,
    profile_at,
    verify_conflict_free,
)
from repro.patterns import log_pattern


class TestProfile:
    def test_conflict_free_profile(self, log_solution):
        profile = profile_at(log_solution.pattern, log_solution.bank_of)
        assert profile.worst == 1
        assert profile.conflict_free
        assert profile.delta_ii == 0
        assert len(set(profile.banks)) == 13

    def test_histogram_sums_to_pattern_size(self, log_solution):
        profile = profile_at(log_solution.pattern, log_solution.bank_of)
        assert sum(profile.histogram.values()) == 13

    def test_conflicting_profile(self):
        pattern = Pattern([(0, 0), (0, 1), (1, 0), (1, 1)])
        profile = profile_at(pattern, lambda x: (x[0] + x[1]) % 4)
        assert profile.worst == 2
        assert not profile.conflict_free

    def test_profile_at_offset(self, log_solution):
        profile = profile_at(log_solution.pattern, log_solution.bank_of, (3, 5))
        assert profile.worst == 1


class TestDeltaII:
    def test_origin_only_default(self, log_solution):
        assert delta_ii(log_solution.pattern, log_solution.bank_of) == 0

    def test_offset_invariance_over_window(self, log_solution):
        """The linear hash's conflict count is the same at every offset."""
        window = offset_window(2, 13)
        assert delta_ii(log_solution.pattern, log_solution.bank_of, window) == 0

    def test_constrained_solution_delta_over_window(self):
        solution = partition(log_pattern(), n_max=10)
        window = offset_window(2, 7)
        assert delta_ii(solution.pattern, solution.bank_of, window) == 1

    def test_single_bank_delta_is_m_minus_1(self, log_p):
        assert delta_ii(log_p, lambda x: 0) == log_p.size - 1


class TestOffsetWindow:
    def test_size(self):
        assert len(offset_window(2, 3)) == 16

    def test_1d(self):
        assert offset_window(1, 2) == [(0,), (1,), (2,)]

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            offset_window(2, -1)


class TestVerify:
    def test_all_benchmark_solutions_verified(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            solution = partition(pattern)
            assert verify_conflict_free(solution, window_radius=3), name

    def test_two_level_scheme_verified(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        assert verify_conflict_free(solution, window_radius=13)

    def test_measured_cycles(self, log_solution):
        assert measured_cycles(log_solution) == 1
        assert measured_cycles(partition(log_pattern(), n_max=10)) == 2


class TestConflictTable:
    def test_matches_paper_sweep(self):
        transform = derive_alpha(log_pattern())
        table = conflict_table(
            log_pattern(),
            lambda n: (lambda x, n=n: transform.apply(x) % n),
            10,
        )
        assert table == [13, 9, 5, 6, 5, 3, 2, 3, 2, 3]
