"""Tests for the line-buffer baseline and the 3-D volume workload."""

import numpy as np
import pytest

from repro.baselines import LineBufferDesign, linebuffer_vs_banking_storage
from repro.errors import SimulationError
from repro.patterns import log_pattern, se_pattern
from repro.workloads import volume
from repro.workloads.volume3d import volume_gradient


class TestLineBuffer:
    def test_storage_formula(self):
        design = LineBufferDesign(pattern=log_pattern(), image_shape=(480, 640))
        # 4 rows of 640 + 5x5 window registers
        assert design.buffer_elements == 4 * 640
        assert design.register_elements == 25
        assert design.total_storage == 4 * 640 + 25

    def test_one_read_per_cycle(self):
        design = LineBufferDesign(pattern=log_pattern(), image_shape=(480, 640))
        assert design.array_reads_per_cycle == 1

    def test_warmup_then_ii1(self):
        design = LineBufferDesign(pattern=se_pattern(), image_shape=(10, 12))
        assert design.warmup_cycles == 2 * 12 + 3
        assert design.total_cycles() == design.warmup_cycles + 120

    def test_raster_only(self):
        design = LineBufferDesign(pattern=se_pattern(), image_shape=(10, 12))
        assert design.supports_access_order(raster=True)
        assert not design.supports_access_order(raster=False)

    def test_validation(self):
        from repro.patterns import sobel3d_pattern

        with pytest.raises(SimulationError):
            LineBufferDesign(pattern=sobel3d_pattern(), image_shape=(10, 10))
        with pytest.raises(SimulationError):
            LineBufferDesign(pattern=log_pattern(), image_shape=(3, 3))

    def test_storage_comparison(self):
        lb, banking = linebuffer_vs_banking_storage(log_pattern(), (480, 640), 13)
        # 640 % 13 != 0: banking pads; the line buffer still stores 4 rows.
        assert lb == 4 * 640 + 25
        assert banking > 0

    def test_banking_wins_on_divisible_shapes(self):
        """When N divides the padded dim, banking has zero overhead and
        beats the line buffer's standing 4-row cost."""
        lb, banking = linebuffer_vs_banking_storage(log_pattern(), (480, 650), 13)
        assert banking == 0
        assert lb > banking


class TestVolumeGradient:
    def test_matches_golden(self):
        vol = volume(5, 5, 30, seed=1)
        report = volume_gradient(vol)
        assert report.matches_golden
        assert report.n_banks == 27

    def test_single_cycle_reads(self):
        vol = volume(4, 4, 29, seed=2)
        report = volume_gradient(vol)
        assert report.speedup == pytest.approx(26.0)

    def test_constrained_volume(self):
        vol = volume(4, 4, 28, seed=3)
        report = volume_gradient(vol, n_max=14)
        assert report.matches_golden
        assert report.n_banks <= 14
        assert report.speedup < 26.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            volume_gradient(np.zeros((4, 4)))
        with pytest.raises(SimulationError):
            volume_gradient(np.zeros((2, 4, 4)))
