"""Tests for the structural Verilog generator.

The generated address logic is *semantically* checked: each lane's
``assign bank_k = …`` / ``assign offset_k = …`` expressions are evaluated
(Verilog's integer %, /, * agree with Python's on non-negative operands)
and compared against the BankMapping that generated them.
"""

import re

import pytest

from repro.core import BankMapping, partition, widen_solution
from repro.errors import HardwareModelError
from repro.hw import (
    NetlistSpec,
    generate_address_logic,
    generate_bank_module,
    generate_netlist,
    netlist_stats,
)
from repro.patterns import log_pattern, se_pattern


def spec_for(pattern=None, shape=(12, 14), lanes=0, **kwargs):
    mapping = BankMapping(solution=partition(pattern or log_pattern(), **kwargs), shape=shape)
    return NetlistSpec(mapping=mapping, lanes=lanes)


def eval_lane(logic: str, lane: int, element) -> tuple:
    """Interpret lane ``lane``'s generated expressions on an element."""
    namespace = {f"x{d}_{lane}": int(c) for d, c in enumerate(element)}
    results = {}
    for match in re.finditer(
        rf"(?:wire \[31:0\] |assign )(\w+_{lane}) = (.+?);", logic
    ):
        name, expr = match.groups()
        results[name] = eval(  # noqa: S307 - generated input, test only
            expr.replace("/", "//"), {}, {**namespace, **results}
        )
    return results[f"bank_{lane}"], results[f"offset_{lane}"]


class TestAddressLogicSemantics:
    def test_direct_scheme_matches_mapping(self):
        spec = spec_for()
        logic = generate_address_logic(spec)
        mapping = spec.mapping
        for element in [(0, 0), (3, 7), (11, 13), (5, 12)]:
            assert eval_lane(logic, 0, element) == mapping.address_of(element)

    def test_two_level_scheme(self):
        spec = spec_for(shape=(8, 20), n_max=10, same_size=False)
        logic = generate_address_logic(spec)
        for element in [(0, 0), (2, 19), (7, 13)]:
            assert eval_lane(logic, 0, element) == spec.mapping.address_of(element)

    def test_wide_scheme(self):
        wide = widen_solution(partition(log_pattern()), 2)
        mapping = BankMapping(solution=wide, shape=(8, 20))
        spec = NetlistSpec(mapping=mapping)
        logic = generate_address_logic(spec)
        for element in [(0, 0), (5, 17), (7, 3)]:
            assert eval_lane(logic, 0, element) == mapping.address_of(element)

    def test_all_lanes_identical_logic(self):
        spec = spec_for(pattern=se_pattern(), shape=(6, 7))
        logic = generate_address_logic(spec)
        mapping = spec.mapping
        for lane in range(5):
            for element in mapping.iter_elements():
                assert eval_lane(logic, lane, element) == mapping.address_of(element)


class TestStructure:
    def test_one_instance_per_bank(self):
        verilog = generate_netlist(spec_for())
        stats = netlist_stats(verilog)
        assert stats["bank_instances"] == 13
        assert stats["modules"] == 2

    def test_lane_count_defaults_to_pattern_size(self):
        spec = spec_for(pattern=se_pattern(), shape=(8, 10))
        assert spec.lanes == 5
        verilog = generate_netlist(spec)
        assert "rdata_4" in verilog and "rdata_5" not in verilog

    def test_explicit_lanes(self):
        spec = spec_for(pattern=se_pattern(), shape=(8, 10), lanes=2)
        verilog = generate_netlist(spec)
        assert "rdata_1" in verilog and "rdata_2" not in verilog

    def test_bank_module_template(self):
        text = generate_bank_module(spec_for())
        assert "module banked_memory_bank" in text
        assert "always @(posedge clk)" in text

    def test_depth_parameters_match_bank_sizes(self):
        spec = spec_for(shape=(6, 14))
        verilog = generate_netlist(spec)
        depths = [int(d) for d in re.findall(r"\.DEPTH\((\d+)\)", verilog)]
        expected = [spec.mapping.bank_size(b) for b in range(13)]
        assert depths == expected

    def test_header_documents_solution(self):
        verilog = generate_netlist(spec_for())
        assert "alpha=(5, 1)" in verilog

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            NetlistSpec(mapping=spec_for().mapping, data_width=0)
        with pytest.raises(HardwareModelError):
            NetlistSpec(mapping=spec_for().mapping, lanes=-1)
