"""Smoke tests: every example script must run cleanly.

Examples are documentation that executes; this test keeps them from
rotting as the library evolves.  Each script is run in-process via runpy
with stdout captured, and a few load-bearing output lines are checked.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_mentions_paper_numbers(capsys):
    runpy.run_path(str(EXAMPLES_BY_NAME["quickstart"]), run_name="__main__")
    out = capsys.readouterr().out
    assert "alpha = (5, 1)" in out
    assert "13 banks" in out
    assert "640" in out  # the Section 2 overhead anchor


def test_edge_detection_all_golden(capsys):
    runpy.run_path(str(EXAMPLES_BY_NAME["edge_detection"]), run_name="__main__")
    out = capsys.readouterr().out
    assert "NO" not in out  # every run verified against the golden model
    assert "yes" in out


def test_hls_flow_emits_banked_kernel(capsys):
    runpy.run_path(str(EXAMPLES_BY_NAME["hls_flow"]), run_name="__main__")
    out = capsys.readouterr().out
    assert "II = 1" in out
    assert "X_bank0" in out


def test_full_pipeline_reports_cycles(capsys):
    runpy.run_path(str(EXAMPLES_BY_NAME["full_pipeline"]), run_name="__main__")
    out = capsys.readouterr().out
    assert "bit-exact against the golden model: True" in out


EXAMPLES_BY_NAME = {p.stem: p for p in EXAMPLES}
