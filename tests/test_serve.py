"""The serving subsystem: protocol, store, endpoints, deadlines, restarts.

Each test boots a real :class:`~repro.serve.server.ThreadedServer` on an
ephemeral port and talks to it through the blocking client — the full
stack (HTTP framing, coalescer, solve tier, store) is exercised exactly as
production traffic would, never through private shortcuts.
"""

from __future__ import annotations

import importlib
import json
import threading
import time

import pytest

from repro.core.cache import solve_key, stable_digest
from repro.core.solver import Objective, solve
from repro.io import solution_from_dict, solution_to_dict
from repro.obs import registry
from repro.patterns import log_pattern, median_pattern, se_pattern
from repro.serve import (
    BadRequestError,
    DeadlineExceededError,
    InfeasibleRequestError,
    ServeClient,
    ServeError,
    ServerBusyError,
    SolutionStore,
    parse_simulate_spec,
    parse_solve_spec,
    serve_in_thread,
)
from repro.serve.protocol import request_payload


@pytest.fixture()
def server(tmp_path):
    with serve_in_thread(store_dir=str(tmp_path / "store")) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


@pytest.fixture()
def count_solves(monkeypatch):
    """Count calls into the real solver body, wherever they run in-process."""
    solver_mod = importlib.import_module("repro.core.solver")
    calls = {"n": 0}
    real = solver_mod._solve_impl

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(solver_mod, "_solve_impl", counting)
    return calls


class TestProtocol:
    def test_solve_spec_identity_matches_cache_key(self):
        spec = parse_solve_spec({"benchmark": "log", "n_max": 10, "shape": [640, 480]})
        assert spec.cache_key() == solve_key(
            log_pattern(), (640, 480), 10, "latency", 0
        )
        assert spec.digest() == stable_digest(spec.cache_key())

    def test_request_payload_round_trips(self):
        spec = parse_solve_spec(
            {"offsets": [[0, 0], [0, 2], [1, 1]], "name": "tri", "n_max": 4}
        )
        assert parse_solve_spec(request_payload(spec)) == spec

    def test_translated_patterns_share_a_digest(self):
        a = parse_solve_spec({"offsets": [[0, 0], [1, 1]]})
        b = parse_solve_spec({"offsets": [[7, 3], [8, 4]]})
        assert a.digest() == b.digest()

    def test_mask_and_offsets_forms_agree(self):
        mask = parse_solve_spec({"mask": ["010", "111", "010"]})
        offsets = parse_solve_spec(
            {"offsets": [[0, 1], [1, 0], [1, 1], [1, 2], [2, 1]]}
        )
        assert mask.digest() == offsets.digest()

    @pytest.mark.parametrize(
        "body",
        [
            [],
            {},
            {"benchmark": "nope"},
            {"offsets": [[0, 0], [0, 0]]},
            {"benchmark": "log", "shape": [640]},
            {"benchmark": "log", "shape": [0, 4]},
            {"benchmark": "log", "n_max": 0},
            {"benchmark": "log", "objective": "fastest"},
            {"benchmark": "log", "delta_max": -1},
        ],
    )
    def test_bad_solve_bodies(self, body):
        with pytest.raises(BadRequestError):
            parse_solve_spec(body)

    def test_simulate_requires_shape(self):
        with pytest.raises(BadRequestError, match="shape"):
            parse_simulate_spec({"benchmark": "log"})


class TestSolutionStore:
    def _digest_and_solution(self, n_max=10):
        solution = solve(log_pattern(), n_max=n_max, cache=False).solution
        digest = stable_digest(solve_key(log_pattern(), None, n_max, "latency", 0))
        return digest, solution

    def test_round_trip_and_reattach(self, tmp_path):
        store = SolutionStore(tmp_path)
        digest, solution = self._digest_and_solution()
        store.put(digest, solution)
        assert len(store) == 1
        moved = log_pattern().translated((2, 5))
        loaded = store.get(digest, moved)
        assert loaded.pattern == moved
        assert loaded.n_banks == solution.n_banks
        assert (store.hits, store.misses) == (1, 0)

    def test_survives_reopen(self, tmp_path):
        digest, solution = self._digest_and_solution()
        SolutionStore(tmp_path).put(digest, solution)
        reopened = SolutionStore(tmp_path)
        assert reopened.get(digest) == solution

    def test_lru_eviction_bounds_entries(self, tmp_path):
        store = SolutionStore(tmp_path, max_entries=3)
        digests = []
        for n_max in range(5, 10):
            digest, solution = self._digest_and_solution(n_max)
            digests.append(digest)
            store.put(digest, solution)
        assert len(store) == 3
        assert store.get(digests[0]) is None  # oldest evicted
        assert store.get(digests[-1]) is not None

    def test_corrupt_artifact_is_dropped_not_fatal(self, tmp_path):
        store = SolutionStore(tmp_path)
        digest, solution = self._digest_and_solution()
        path = store.put(digest, solution)
        path.write_text("{not json")
        assert store.get(digest) is None
        assert not path.exists()

    def test_wrong_digest_filename_rejected(self, tmp_path):
        store = SolutionStore(tmp_path)
        digest, solution = self._digest_and_solution()
        path = store.put(digest, solution)
        doc = json.loads(path.read_text())
        other = tmp_path / ("0" * 64 + ".json")
        other.write_text(json.dumps(doc))
        store2 = SolutionStore(tmp_path)
        assert store2.get("0" * 64) is None


class TestSolveEndpoint:
    def test_bit_identical_to_direct_solve(self, client):
        doc = client.solve(benchmark="log", n_max=10, shape=(640, 480))
        direct = solve(log_pattern(), shape=(640, 480), n_max=10, cache=False)
        assert solution_from_dict(doc["solution"]) == direct.solution
        assert doc["overhead_elements"] == direct.overhead_elements
        assert doc["objective_vector"] == list(direct.objective_vector)

    def test_objective_and_delta_max_pass_through(self, client):
        doc = client.solve(
            benchmark="se", shape=(64, 64), n_max=8, objective="banks", delta_max=1
        )
        direct = solve(
            se_pattern(),
            shape=(64, 64),
            n_max=8,
            objective=Objective.BANKS,
            delta_max=1,
            cache=False,
        )
        assert solution_from_dict(doc["solution"]) == direct.solution

    def test_translated_request_gets_own_pattern_back(self, client):
        moved = log_pattern().translated((4, 9))
        client.solve(benchmark="log", n_max=10)  # seed the canonical solve
        sol = client.solve_solution(pattern=moved, n_max=10)
        assert sol.pattern == moved

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.solve(mask=["abc"])
        assert info.value.http_status == 400
        assert info.value.code == "bad_request"

    def test_infeasible_is_422_and_server_survives(self, client):
        with pytest.raises(InfeasibleRequestError) as info:
            client.solve(benchmark="log", n_max=1, objective="banks")
        assert info.value.http_status == 422
        assert client.healthz()["status"] == "ok"

    def test_unknown_route_and_method(self, client):
        status, _, _ = client._request("POST", "/nope")
        assert status == 404
        status, _, _ = client._request("GET", "/solve")
        assert status == 405


class TestDeadlines:
    def test_expired_at_intake_is_504_and_consumes_no_queue(self, tmp_path):
        with serve_in_thread(store_dir=str(tmp_path / "s")) as srv:
            with ServeClient(port=srv.port) as client:
                with pytest.raises(DeadlineExceededError) as info:
                    client.solve(benchmark="log", timeout_ms=0)
                assert info.value.http_status == 504
                # nothing was queued, solved, or stored
                health = client.healthz()
                assert health["pending"] == 0
                assert health["store"]["entries"] == 0

    def test_expired_in_flight_is_504_but_solve_completes(self, tmp_path):
        with serve_in_thread(
            store_dir=str(tmp_path / "s"), solve_delay_s=0.3
        ) as srv:
            with ServeClient(port=srv.port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.solve(benchmark="median", timeout_ms=50)
                # the abandoned solve still lands in the store
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if client.healthz()["store"]["entries"] == 1:
                        break
                    time.sleep(0.02)
                assert client.healthz()["store"]["entries"] == 1
                # and the server keeps serving
                assert client.solve(benchmark="se")["solution"]["n_banks"] == 5


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        with serve_in_thread(
            store_dir=str(tmp_path / "s"),
            solve_delay_s=0.4,
            max_pending=1,
            retry_after_s=2.0,
        ) as srv:
            slow = threading.Thread(
                target=lambda: ServeClient(port=srv.port).solve(benchmark="median")
            )
            slow.start()
            time.sleep(0.15)  # let the slow solve occupy the queue
            with ServeClient(port=srv.port) as client:
                with pytest.raises(ServerBusyError) as info:
                    client.solve(benchmark="se")
                assert info.value.http_status == 429
                assert info.value.retry_after_s == 2.0
                # coalescing onto the in-flight job is still allowed
                doc = client.solve(benchmark="median")
                assert doc["solution"]["n_banks"] == 8
                slow.join()
                # capacity freed: the rejected request now succeeds
                assert client.solve(benchmark="se")["solution"]["n_banks"] == 5


class TestWarmRestart:
    def test_restart_serves_from_store_with_zero_solves(
        self, tmp_path, count_solves
    ):
        store_dir = str(tmp_path / "store")
        with serve_in_thread(store_dir=store_dir) as srv:
            with ServeClient(port=srv.port) as client:
                first = client.solve(benchmark="log", n_max=10)
        assert count_solves["n"] == 1

        # new server, same store; in-memory cache cleared = fresh process
        from repro.core import solve_cache

        solve_cache.clear()
        with serve_in_thread(store_dir=store_dir) as srv:
            with ServeClient(port=srv.port) as client:
                moved = log_pattern().translated((3, 9))
                doc = client.solve(pattern=moved, n_max=10)
                health = client.healthz()["store"]
        assert count_solves["n"] == 1  # no new solve after restart
        assert health["hits"] == 1
        # canonical content identical; only the attached pattern differs
        assert doc["solution"]["n_banks"] == first["solution"]["n_banks"]
        assert doc["key"] == first["key"]


class TestSimulateEndpoint:
    def test_report_matches_direct_simulation(self, client):
        doc = client.simulate(benchmark="se", shape=(16, 16))
        from repro.core.mapping import BankMapping
        from repro.sim.memsim import simulate_sweep

        direct = solve(se_pattern(), shape=(16, 16), cache=False)
        report = simulate_sweep(
            BankMapping(solution=direct.solution, shape=(16, 16))
        )
        assert doc["report"] == report.to_dict()
        assert solution_from_dict(doc["solution"]) == direct.solution

    def test_simulate_without_shape_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client._json("POST", "/simulate", {"benchmark": "se"})
        assert info.value.http_status == 400


class TestTable1Endpoint:
    def test_single_row(self, client):
        doc = client.table1(benchmarks=["median"], repetitions=1)
        assert [row["benchmark"] for row in doc["rows"]] == ["median"]
        row = doc["rows"][0]
        assert row["ours"]["n_banks"] == 8
        assert row["ours"]["operations"] < row["ltb"]["operations"]

    def test_unknown_benchmark_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.table1(benchmarks=["nope"])
        assert info.value.http_status == 400


class TestIntrospection:
    def test_healthz_shape(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["store"]["entries"] == 0
        assert health["pending"] == 0
        assert health["uptime_s"] >= 0

    def test_metrics_is_prometheus_text(self, client):
        client.solve(benchmark="se")
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        # Request latency is a native Prometheus histogram now.
        assert "# TYPE repro_serve_request_latency_ms histogram" in text
        assert 'repro_serve_request_latency_ms_bucket{le="+Inf"}' in text
        assert "repro_serve_request_latency_ms_count" in text
        # the store traffic shows up too
        assert "repro_serve_store_writes_total 1" in text
        # occupancy gauges are seeded by the /metrics handler itself
        assert "repro_serve_store_entries 1" in text
        assert "repro_serve_store_bytes" in text

    def test_request_counters_advance(self, server):
        before = registry().snapshot()["counters"].get("serve.requests", 0)
        with ServeClient(port=server.port) as client:
            client.healthz()
            client.solve(benchmark="se")
        after = registry().snapshot()["counters"]["serve.requests"]
        assert after - before == 2


class TestServeCli:
    def test_parser_defaults(self):
        from repro.serve.cli import build_parser

        args = build_parser().parse_args([])
        assert args.port == 8642
        assert args.jobs == 0
        assert args.store_dir is None

    def test_entry_point_registered(self):
        import repro.serve.cli as cli

        assert callable(cli.main_serve)
