"""Unit tests for the single-bank model (port arbitration)."""

import pytest

from repro.errors import SimulationError
from repro.hw import MemoryBank


class TestStorage:
    def test_poke_peek(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(2, 42)
        assert bank.peek(2) == 42
        assert bank.peek(0) is None

    def test_occupancy(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(0, 1)
        bank.poke(3, 2)
        assert bank.occupancy == 2

    def test_offset_bounds(self):
        bank = MemoryBank(index=0, size=4)
        with pytest.raises(SimulationError):
            bank.peek(4)
        with pytest.raises(SimulationError):
            bank.poke(-1, 0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MemoryBank(index=0, size=-1)
        with pytest.raises(SimulationError):
            MemoryBank(index=0, size=4, ports=0)


class TestArbitration:
    def test_single_port_single_access(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(0, 7)
        assert bank.read(0, cycle=0) == 7

    def test_single_port_conflict_raises(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(0, 7)
        bank.read(0, cycle=0)
        with pytest.raises(SimulationError, match="port conflict"):
            bank.read(0, cycle=0)

    def test_next_cycle_frees_port(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(0, 7)
        bank.read(0, cycle=0)
        assert bank.read(0, cycle=1) == 7

    def test_dual_port(self):
        bank = MemoryBank(index=0, size=4, ports=2)
        bank.poke(0, 1)
        bank.poke(1, 2)
        assert bank.read(0, cycle=0) == 1
        assert bank.read(1, cycle=0) == 2
        with pytest.raises(SimulationError):
            bank.read(0, cycle=0)

    def test_try_claim_counts_conflicts(self):
        bank = MemoryBank(index=0, size=4)
        assert bank.try_claim(cycle=0)
        assert not bank.try_claim(cycle=0)
        assert bank.conflicts == 1
        assert bank.accesses == 1

    def test_write_arbitrated(self):
        bank = MemoryBank(index=0, size=4)
        bank.write(0, 9, cycle=0)
        with pytest.raises(SimulationError):
            bank.write(1, 8, cycle=0)
        assert bank.peek(0) == 9

    def test_reads_and_writes_share_ports(self):
        bank = MemoryBank(index=0, size=4)
        bank.poke(0, 5)
        bank.write(1, 6, cycle=3)
        with pytest.raises(SimulationError):
            bank.read(0, cycle=3)
