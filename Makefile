# Convenience targets for the repro repository.

.PHONY: install test bench validate table1 casestudy examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

validate:
	python -m repro.eval.validation --quick

table1:
	python -c "from repro.eval.cli import main_table1; main_table1([])"

casestudy:
	python -c "from repro.eval.cli import main_casestudy; main_casestudy([])"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: install test bench validate examples
