# Convenience targets for the repro repository.

.PHONY: install build-ext clean-ext test bench bench-perf bench-check validate table1 casestudy examples serve cluster verify fuzz all

install:
	python setup.py develop

# Optional compiled fast tier (engine="native"; docs/PERFORMANCE.md).
# Needs a C compiler; everything keeps working without it — engine="auto"
# falls back to the NumPy engines when the extension is absent.
build-ext:
	REPRO_BUILD_NATIVE=1 python setup.py build_ext --inplace

clean-ext:
	rm -f src/repro/native/_native*.so src/repro/native/_native*.pyd
	rm -rf build

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Implementation-speed trajectory (scalar vs vectorized, cold vs warm
# cache); writes BENCH_perf.json at the repo root.  Use PRESET=full for
# the acceptance workload (512x512 stencil).
bench-perf:
	PYTHONPATH=src python benchmarks/bench_perf_suite.py --preset $(or $(PRESET),small)

# Perf-regression gate: fresh suite run vs benchmarks/baselines/.  SLACK=
# overrides the tolerance; `make bench-check SLACK=2.5 RUNS=3` is the
# careful local pass, CI runs --quick with a wide slack.  Re-baseline
# after an intentional perf change with:
#   PYTHONPATH=src python -m repro.bench.check --update-baseline
bench-check:
	PYTHONPATH=src python -m repro.bench.check --slack $(or $(SLACK),2.5) --runs $(or $(RUNS),1)

validate:
	python -m repro.eval.validation --quick

table1:
	python -c "from repro.eval.cli import main_table1; main_table1([])"

casestudy:
	python -c "from repro.eval.cli import main_casestudy; main_casestudy([])"

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

# Seeded differential fuzzing (docs/VERIFICATION.md).  CASES= and SEED=
# override the sweep; `make fuzz` additionally runs the pytest fuzz tier.
verify:
	PYTHONPATH=src python -m repro.verify.cli --cases $(or $(CASES),500) --seed $(or $(SEED),0)

fuzz: verify
	pytest tests/ -m fuzz

# Long-lived partitioning service (docs/SERVING.md).  STORE= sets the
# persistent solution store directory; PORT=0 binds an ephemeral port.
serve:
	PYTHONPATH=src python -m repro.serve.cli --port $(or $(PORT),8642) $(if $(STORE),--store-dir $(STORE))

# Sharded serving: front router + SHARDS workers with a tiered
# content-addressed store cluster (docs/CLUSTER.md).  STORE= persists the
# per-shard stores and cluster map across restarts.
cluster:
	PYTHONPATH=src python -m repro.cluster.cli --shards $(or $(SHARDS),4) --port $(or $(PORT),8642) $(if $(STORE),--store-root $(STORE))

all: install test bench validate examples
